package provenance

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"wolves/internal/workflow"
)

// This file models concrete workflow executions as provenance graphs in
// the Open Provenance Model style the paper cites [6]: processes (task
// invocations) and artifacts (data items) connected by used /
// wasGeneratedBy edges. A Trace holds an arbitrary number of artifacts
// per task (a task may emit several outputs, or none); Execute remains
// the convenience constructor producing the paper's own simplification —
// exactly one invocation and one output artifact per task ("the data
// items flowing between tasks have been omitted").

// Artifact is a data item produced during an execution.
type Artifact struct {
	ID       string `json:"id"`
	Producer string `json:"producer"` // task ID
}

// UsedEdge records that a task invocation consumed an artifact.
type UsedEdge struct {
	Process  string `json:"process"`  // task ID
	Artifact string `json:"artifact"` // artifact ID
}

// Trace errors.
var (
	ErrDuplicateArtifact = errors.New("provenance: duplicate artifact id")
	ErrUnknownArtifact   = errors.New("provenance: unknown artifact id")
	ErrNoOutput          = errors.New("provenance: task produced no artifact")
)

// Trace is one execution of a workflow: an arbitrary multi-output
// provenance graph. Build one with New + AddArtifact/AddUsed (or the
// Execute simulator) — methods validate every record against the
// workflow's task space as it is added.
type Trace struct {
	RunID     string
	wf        *workflow.Workflow
	artifacts []Artifact
	used      []UsedEdge
	artIdx    map[string]int // artifact ID → index in artifacts
	byTask    [][]int        // task index → artifact indices, insertion order
}

// New returns an empty trace over wf.
func New(wf *workflow.Workflow, runID string) *Trace {
	return &Trace{
		RunID:  runID,
		wf:     wf,
		artIdx: make(map[string]int),
		byTask: make([][]int, wf.N()),
	}
}

// AddArtifact records a new artifact. The producer must name a workflow
// task and the ID must be new within the trace.
func (tr *Trace) AddArtifact(a Artifact) error {
	if a.ID == "" {
		return errors.New("provenance: empty artifact id")
	}
	ti, ok := tr.wf.Index(a.Producer)
	if !ok {
		return fmt.Errorf("provenance: artifact %q: %w: %q", a.ID, workflow.ErrUnknownTask, a.Producer)
	}
	if _, dup := tr.artIdx[a.ID]; dup {
		return fmt.Errorf("%w: %q", ErrDuplicateArtifact, a.ID)
	}
	tr.artIdx[a.ID] = len(tr.artifacts)
	tr.byTask[ti] = append(tr.byTask[ti], len(tr.artifacts))
	tr.artifacts = append(tr.artifacts, a)
	return nil
}

// AddUsed records that process (a workflow task) consumed an artifact
// already present in the trace.
func (tr *Trace) AddUsed(e UsedEdge) error {
	if _, ok := tr.wf.Index(e.Process); !ok {
		return fmt.Errorf("provenance: used edge: %w: %q", workflow.ErrUnknownTask, e.Process)
	}
	if _, ok := tr.artIdx[e.Artifact]; !ok {
		return fmt.Errorf("provenance: used edge: %w: %q", ErrUnknownArtifact, e.Artifact)
	}
	tr.used = append(tr.used, e)
	return nil
}

// Execute simulates a run of wf: every task fires once, producing one
// output artifact and consuming the outputs of its predecessors.
func Execute(wf *workflow.Workflow, runID string) *Trace {
	tr := New(wf, runID)
	for i := 0; i < wf.N(); i++ {
		if err := tr.AddArtifact(Artifact{
			ID:       fmt.Sprintf("%s/%s/out", runID, wf.Task(i).ID),
			Producer: wf.Task(i).ID,
		}); err != nil {
			panic("provenance: simulated artifact must be addable: " + err.Error())
		}
	}
	wf.Graph().Edges(func(u, v int) {
		if err := tr.AddUsed(UsedEdge{
			Process:  wf.Task(v).ID,
			Artifact: tr.artifacts[tr.byTask[u][0]].ID,
		}); err != nil {
			panic("provenance: simulated used edge must be addable: " + err.Error())
		}
	})
	return tr
}

// Workflow returns the executed workflow.
func (tr *Trace) Workflow() *workflow.Workflow { return tr.wf }

// Artifacts returns all artifacts, in insertion order (task-index order
// for Execute traces).
func (tr *Trace) Artifacts() []Artifact { return append([]Artifact(nil), tr.artifacts...) }

// Used returns all consumption edges.
func (tr *Trace) Used() []UsedEdge { return append([]UsedEdge(nil), tr.used...) }

// OutputsOf returns every artifact the given task produced, in insertion
// order. An unknown task errors; a task with no outputs returns nil.
func (tr *Trace) OutputsOf(taskID string) ([]Artifact, error) {
	i, ok := tr.wf.Index(taskID)
	if !ok {
		return nil, fmt.Errorf("provenance: %w: %q", workflow.ErrUnknownTask, taskID)
	}
	var out []Artifact
	for _, ai := range tr.byTask[i] {
		out = append(out, tr.artifacts[ai])
	}
	return out, nil
}

// ArtifactOf returns the first output artifact of the given task ID —
// the sole output for Execute-style single-output traces. A task with
// no output errors with ErrNoOutput.
func (tr *Trace) ArtifactOf(taskID string) (Artifact, error) {
	i, ok := tr.wf.Index(taskID)
	if !ok {
		return Artifact{}, fmt.Errorf("provenance: %w: %q", workflow.ErrUnknownTask, taskID)
	}
	if len(tr.byTask[i]) == 0 {
		return Artifact{}, fmt.Errorf("%w: %q", ErrNoOutput, taskID)
	}
	return tr.artifacts[tr.byTask[i][0]], nil
}

// ArtifactLineage returns the artifacts that (transitively) contributed
// to the output of taskID, using engine e for reachability: every
// artifact produced by every ancestor task, in ancestor order.
func (tr *Trace) ArtifactLineage(e *Engine, taskID string) ([]Artifact, error) {
	i, ok := tr.wf.Index(taskID)
	if !ok {
		return nil, fmt.Errorf("provenance: %w: %q", workflow.ErrUnknownTask, taskID)
	}
	var out []Artifact
	for _, t := range e.Lineage(i) {
		for _, ai := range tr.byTask[t] {
			out = append(out, tr.artifacts[ai])
		}
	}
	return out, nil
}

// opmDocument is the JSON export shape.
type opmDocument struct {
	Run       string     `json:"run"`
	Processes []string   `json:"processes"`
	Artifacts []Artifact `json:"artifacts"`
	Used      []UsedEdge `json:"used"`
	Generated []UsedEdge `json:"wasGeneratedBy"`
}

// WriteOPM exports the trace as an OPM-style JSON document. Processes
// list every workflow task; wasGeneratedBy edges follow artifact
// insertion order, so Execute traces export byte-identically to the
// historical single-output encoding.
func (tr *Trace) WriteOPM(w io.Writer) error {
	doc := opmDocument{Run: tr.RunID, Artifacts: tr.artifacts, Used: tr.used}
	for i := 0; i < tr.wf.N(); i++ {
		doc.Processes = append(doc.Processes, tr.wf.Task(i).ID)
	}
	for _, a := range tr.artifacts {
		doc.Generated = append(doc.Generated, UsedEdge{Process: a.Producer, Artifact: a.ID})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}
