package provenance

import (
	"bytes"
	"errors"
	"fmt"
	"reflect"
	"testing"

	"wolves/internal/repo"
	"wolves/internal/workflow"
)

// TestExecuteEquivalence pins the satellite requirement: the generalized
// multi-output Trace, driven through the incremental constructor with
// exactly Execute's records, behaves identically to Execute — same
// artifacts, used edges, per-task lookups, lineage and OPM export bytes.
func TestExecuteEquivalence(t *testing.T) {
	wf, _ := repo.Figure1()
	e := NewEngine(wf)
	sim := Execute(wf, "run1")

	manual := New(wf, "run1")
	for i := 0; i < wf.N(); i++ {
		if err := manual.AddArtifact(Artifact{
			ID:       fmt.Sprintf("run1/%s/out", wf.Task(i).ID),
			Producer: wf.Task(i).ID,
		}); err != nil {
			t.Fatal(err)
		}
	}
	wf.Graph().Edges(func(u, v int) {
		if err := manual.AddUsed(UsedEdge{
			Process:  wf.Task(v).ID,
			Artifact: fmt.Sprintf("run1/%s/out", wf.Task(u).ID),
		}); err != nil {
			t.Fatal(err)
		}
	})

	if !reflect.DeepEqual(sim.Artifacts(), manual.Artifacts()) {
		t.Fatal("artifacts diverge")
	}
	if !reflect.DeepEqual(sim.Used(), manual.Used()) {
		t.Fatal("used edges diverge")
	}
	for i := 0; i < wf.N(); i++ {
		id := wf.Task(i).ID
		a1, err1 := sim.ArtifactOf(id)
		a2, err2 := manual.ArtifactOf(id)
		if err1 != nil || err2 != nil || a1 != a2 {
			t.Fatalf("ArtifactOf(%s): %v/%v vs %v/%v", id, a1, err1, a2, err2)
		}
		l1, _ := sim.ArtifactLineage(e, id)
		l2, _ := manual.ArtifactLineage(e, id)
		if !reflect.DeepEqual(l1, l2) {
			t.Fatalf("ArtifactLineage(%s) diverges", id)
		}
	}
	var b1, b2 bytes.Buffer
	if err := sim.WriteOPM(&b1); err != nil {
		t.Fatal(err)
	}
	if err := manual.WriteOPM(&b2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Fatal("OPM exports diverge")
	}
}

// TestMultiOutputTrace exercises the generalization Execute cannot
// produce: several artifacts per task, tasks with none, and lineage
// answers spanning all outputs of every ancestor.
func TestMultiOutputTrace(t *testing.T) {
	wf, err := workflow.NewBuilder("multi").
		AddTask("a").AddTask("b").AddTask("c").
		AddEdge("a", "b").AddEdge("b", "c").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	tr := New(wf, "r")
	for _, art := range []Artifact{
		{ID: "a/1", Producer: "a"},
		{ID: "a/2", Producer: "a"},
		{ID: "c/1", Producer: "c"}, // b produces nothing
	} {
		if err := tr.AddArtifact(art); err != nil {
			t.Fatal(err)
		}
	}
	if err := tr.AddUsed(UsedEdge{Process: "b", Artifact: "a/1"}); err != nil {
		t.Fatal(err)
	}

	outs, err := tr.OutputsOf("a")
	if err != nil || len(outs) != 2 || outs[0].ID != "a/1" || outs[1].ID != "a/2" {
		t.Fatalf("OutputsOf(a) = %v, %v", outs, err)
	}
	if outs, err := tr.OutputsOf("b"); err != nil || outs != nil {
		t.Fatalf("OutputsOf(b) = %v, %v", outs, err)
	}
	if a, err := tr.ArtifactOf("a"); err != nil || a.ID != "a/1" {
		t.Fatalf("ArtifactOf(a) = %v, %v", a, err)
	}
	if _, err := tr.ArtifactOf("b"); !errors.Is(err, ErrNoOutput) {
		t.Fatalf("ArtifactOf(b) must be ErrNoOutput, got %v", err)
	}
	if _, err := tr.ArtifactOf("ghost"); !errors.Is(err, workflow.ErrUnknownTask) {
		t.Fatalf("ArtifactOf(ghost) = %v", err)
	}

	e := NewEngine(wf)
	lin, err := tr.ArtifactLineage(e, "c")
	if err != nil || len(lin) != 2 || lin[0].ID != "a/1" || lin[1].ID != "a/2" {
		t.Fatalf("ArtifactLineage(c) = %v, %v", lin, err)
	}

	// Validation of the incremental constructors.
	if err := tr.AddArtifact(Artifact{ID: "a/1", Producer: "a"}); !errors.Is(err, ErrDuplicateArtifact) {
		t.Fatalf("duplicate artifact: %v", err)
	}
	if err := tr.AddArtifact(Artifact{ID: "x", Producer: "ghost"}); !errors.Is(err, workflow.ErrUnknownTask) {
		t.Fatalf("unknown producer: %v", err)
	}
	if err := tr.AddArtifact(Artifact{Producer: "a"}); err == nil {
		t.Fatal("empty artifact id must error")
	}
	if err := tr.AddUsed(UsedEdge{Process: "ghost", Artifact: "a/1"}); !errors.Is(err, workflow.ErrUnknownTask) {
		t.Fatalf("unknown process: %v", err)
	}
	if err := tr.AddUsed(UsedEdge{Process: "b", Artifact: "ghost"}); !errors.Is(err, ErrUnknownArtifact) {
		t.Fatalf("dangling used edge: %v", err)
	}

	var buf bytes.Buffer
	if err := tr.WriteOPM(&buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"a/2"`, `"c/1"`, "wasGeneratedBy"} {
		if !bytes.Contains(buf.Bytes(), []byte(want)) {
			t.Fatalf("OPM export missing %s", want)
		}
	}
}
