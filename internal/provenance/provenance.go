// Package provenance implements the provenance analysis that motivates
// WOLVES: lineage (transitive-closure) queries over workflow executions,
// answered either at the workflow level (exact) or at the view level
// (cheaper, but only correct when the view is sound).
//
// The paper's running example: with the unsound view of Figure 1(b), the
// provenance of the output of composite 18 wrongly includes composite 14,
// because the view has a path 14→16→18 although no task inside 14 reaches
// any task inside 18. AuditView quantifies exactly this class of error.
package provenance

import (
	"sync"

	"wolves/internal/bitset"
	"wolves/internal/dag"
	"wolves/internal/view"
	"wolves/internal/workflow"
)

// Engine answers task-level lineage queries against one workflow. It is
// safe for concurrent readers: the one-time ancestor-row build is
// guarded by a sync.Once, and every query afterwards only reads.
type Engine struct {
	wf  *workflow.Workflow
	fwd *dag.Closure // forward reachability: Row(u) = descendants of u
	rev *dag.Closure // transposed closure, when supplied at construction

	ancOnce sync.Once     // guards the one-time construction of anc
	anc     []*bitset.Set // ancestors of u, derived from rev or built by transposing fwd
}

// NewEngine builds the workflow-level lineage engine, computing the
// forward closure; ancestor rows are transposed lazily on first use.
func NewEngine(wf *workflow.Workflow) *Engine {
	return &Engine{wf: wf, fwd: wf.Graph().Reachability()}
}

// NewEngineWithClosures builds a lineage engine over caller-supplied
// closures, skipping all closure computation. rev, when non-nil, must be
// the exact transpose of fwd; ancestor queries then share its rows
// instead of building a transpose. This is the registry path: both
// closures come from an IncrementalClosure whose matrices are updated in
// place as the live workflow mutates, so lineage answers stay current
// across edge mutations with no rebuild (the registry constructs a fresh
// engine only when the matrices are replaced, i.e. on task growth).
func NewEngineWithClosures(wf *workflow.Workflow, fwd, rev *dag.Closure) *Engine {
	return &Engine{wf: wf, fwd: fwd, rev: rev}
}

// Workflow returns the engine's workflow.
func (e *Engine) Workflow() *workflow.Workflow { return e.wf }

func (e *Engine) ancestors() []*bitset.Set {
	e.ancOnce.Do(func() {
		n := e.fwd.N()
		e.anc = make([]*bitset.Set, n)
		if e.rev != nil {
			for v := 0; v < n; v++ {
				e.anc[v] = e.rev.Row(v)
			}
			return
		}
		for v := 0; v < n; v++ {
			e.anc[v] = bitset.New(n)
		}
		for u := 0; u < n; u++ {
			row := e.fwd.Row(u)
			row.ForEach(func(v int) bool {
				e.anc[v].Set(u)
				return true
			})
		}
	})
	return e.anc
}

// Lineage returns the provenance of task t's output: every task t' ≠ t
// with a path t'→t, ascending. This is the paper's "sequence of steps
// used to produce the data" at task granularity.
func (e *Engine) Lineage(t int) []int {
	anc := e.ancestors()[t].Clone()
	anc.Clear(t)
	return anc.Members()
}

// LineageSet returns the ancestor set of t including t itself. The set
// is shared with the engine; do not mutate.
func (e *Engine) LineageSet(t int) *bitset.Set { return e.ancestors()[t] }

// DescendantSet returns the closure row of t — every task reachable
// from t, including t itself. Shared with the engine; do not mutate.
func (e *Engine) DescendantSet(t int) *bitset.Set { return e.fwd.Row(t) }

// Descendants returns every task reachable from t, excluding t.
func (e *Engine) Descendants(t int) []int {
	d := e.fwd.Row(t).Clone()
	d.Clear(t)
	return d.Members()
}

// Reaches reports whether u's output contributes to v.
func (e *Engine) Reaches(u, v int) bool { return e.fwd.Reaches(u, v) }

// ClosurePairs returns the size of the task-level provenance relation.
func (e *Engine) ClosurePairs() int { return e.fwd.Pairs() }

// ViewEngine answers lineage queries at the view (composite) level.
// Queries cost a closure over the (much smaller) view graph; the answer
// for a task is the union of the member sets of the view-level ancestor
// composites — exactly what a user of the Figure 1(b) view sees.
type ViewEngine struct {
	v      *view.View
	qReach *dag.Closure
	anc    []*bitset.Set // composite-level ancestors
}

// NewViewEngine builds the view-level engine.
func NewViewEngine(v *view.View) *ViewEngine {
	q := v.Graph()
	ve := &ViewEngine{v: v, qReach: q.Reachability()}
	k := v.N()
	ve.anc = make([]*bitset.Set, k)
	for c := 0; c < k; c++ {
		ve.anc[c] = bitset.New(k)
	}
	for a := 0; a < k; a++ {
		ve.qReach.Row(a).ForEach(func(b int) bool {
			ve.anc[b].Set(a)
			return true
		})
	}
	return ve
}

// View returns the engine's view.
func (ve *ViewEngine) View() *view.View { return ve.v }

// CompositeLineage returns the composites with a view path to ci,
// excluding ci itself.
func (ve *ViewEngine) CompositeLineage(ci int) []int {
	s := ve.anc[ci].Clone()
	s.Clear(ci)
	return s.Members()
}

// CompositeDescendants returns the composites reachable from ci in the
// view graph, excluding ci itself — the downstream dual of
// CompositeLineage, used for impact ("what consumed this?") queries.
func (ve *ViewEngine) CompositeDescendants(ci int) []int {
	s := ve.qReach.Row(ci).Clone()
	s.Clear(ci)
	return s.Members()
}

// TaskLineage answers "what is the provenance of task t's output?" the
// way a view user would: all members of all composites upstream of t's
// composite. Tasks of t's own composite other than t are excluded — the
// view cannot resolve within-composite structure, and including the
// whole home composite would charge the view for errors the paper does
// not attribute to it.
func (ve *ViewEngine) TaskLineage(t int) []int {
	home := ve.v.CompOf(t)
	out := bitset.New(ve.v.Workflow().N())
	ve.anc[home].ForEach(func(c int) bool {
		if c == home {
			return true
		}
		for _, m := range ve.v.Composite(c).Members() {
			out.Set(m)
		}
		return true
	})
	return out.Members()
}

// TaskDescendants is the downstream dual of TaskLineage: all members of
// all composites downstream of t's composite, as a view user would
// answer "what depends on task t's output?".
func (ve *ViewEngine) TaskDescendants(t int) []int {
	home := ve.v.CompOf(t)
	out := bitset.New(ve.v.Workflow().N())
	ve.qReach.Row(home).ForEach(func(c int) bool {
		if c == home {
			return true
		}
		for _, m := range ve.v.Composite(c).Members() {
			out.Set(m)
		}
		return true
	})
	return out.Members()
}

// ClosurePairs returns the size of the composite-level provenance
// relation — the paper's argument for views: this is much smaller than
// the task-level relation.
func (ve *ViewEngine) ClosurePairs() int { return ve.qReach.Pairs() }
