package provenance

import (
	"bytes"
	"math/rand"
	"reflect"
	"strings"
	"sync"
	"testing"

	"wolves/internal/core"
	"wolves/internal/dag"
	"wolves/internal/repo"
	"wolves/internal/soundness"
	"wolves/internal/view"
	"wolves/internal/workflow"
)

func lineageIDs(e *Engine, wf *workflow.Workflow, id string) []string {
	var out []string
	for _, t := range e.Lineage(wf.MustIndex(id)) {
		out = append(out, wf.Task(t).ID)
	}
	return out
}

func TestWorkflowLineage(t *testing.T) {
	wf, _ := repo.Figure1()
	e := NewEngine(wf)
	// Provenance of task 8 (format alignment): 1,2,6,7.
	if got := lineageIDs(e, wf, "8"); !reflect.DeepEqual(got, []string{"1", "2", "6", "7"}) {
		t.Fatalf("lineage(8) = %v", got)
	}
	// Task 3 is NOT in the provenance of 8 — the paper's point.
	if e.Reaches(wf.MustIndex("3"), wf.MustIndex("8")) {
		t.Fatal("3 must not reach 8")
	}
	// Descendants of 9: 10, 11, 12.
	var desc []string
	for _, d := range e.Descendants(wf.MustIndex("9")) {
		desc = append(desc, wf.Task(d).ID)
	}
	if !reflect.DeepEqual(desc, []string{"10", "11", "12"}) {
		t.Fatalf("descendants(9) = %v", desc)
	}
	if e.ClosurePairs() <= 0 {
		t.Fatal("closure pairs must be positive")
	}
}

// TestFigure1ProvenanceStory reproduces the paper's §1 narrative end to
// end: the unsound view reports composite 14 in the provenance of 18;
// the corrected view does not.
func TestFigure1ProvenanceStory(t *testing.T) {
	wf, v := repo.Figure1()
	e := NewEngine(wf)
	ve := NewViewEngine(v)

	t18, _ := v.CompIndex("18")
	var ancIDs []string
	for _, c := range ve.CompositeLineage(t18) {
		ancIDs = append(ancIDs, v.Composite(c).ID)
	}
	// "all the outputs of tasks (13), (14), (15) and (16) will be
	// considered as the provenance of the output of task (18)".
	if !reflect.DeepEqual(ancIDs, []string{"13", "14", "15", "16"}) {
		t.Fatalf("view lineage of 18 = %v, want [13 14 15 16]", ancIDs)
	}

	// Ground truth: task 3 (inside 14) does not reach task 8 (inside 18).
	audit := AuditView(e, v)
	if audit.FalsePairs == 0 || audit.WrongQueries == 0 {
		t.Fatalf("audit must flag the unsound view: %+v", audit)
	}
	if audit.MissingPairs != 0 {
		t.Fatalf("views can never miss provenance: %+v", audit)
	}
	if audit.Precision >= 1.0 {
		t.Fatalf("precision must drop below 1: %+v", audit)
	}

	// Correct the view and re-audit: errors disappear.
	o := soundness.NewOracle(wf)
	vc, err := core.CorrectView(o, v, core.Strong, nil)
	if err != nil {
		t.Fatal(err)
	}
	audit2 := AuditView(e, vc.Corrected)
	if audit2.FalsePairs != 0 || audit2.WrongQueries != 0 || audit2.Precision != 1.0 {
		t.Fatalf("corrected view must audit clean: %+v", audit2)
	}

	// And the task-level view answer for 8 no longer contains 3.
	ve2 := NewViewEngine(vc.Corrected)
	got := ve2.TaskLineage(wf.MustIndex("8"))
	for _, task := range got {
		if wf.Task(task).ID == "3" {
			t.Fatal("corrected view still reports 3 in provenance of 8")
		}
	}
	// The unsound view did contain 3.
	before := ve.TaskLineage(wf.MustIndex("8"))
	found := false
	for _, task := range before {
		if wf.Task(task).ID == "3" {
			found = true
		}
	}
	if !found {
		t.Fatal("unsound view should report 3 in provenance of 8")
	}
}

// Property: sound views audit clean; views never miss pairs; view-level
// task lineage is always a superset of true lineage restricted to
// foreign composites.
func TestAuditProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for c := 0; c < 60; c++ {
		wf := randomWorkflow(rng, 4+rng.Intn(18))
		v := randomView(rng, wf)
		o := soundness.NewOracle(wf)
		e := NewEngine(wf)
		audit := AuditView(e, v)
		if audit.MissingPairs != 0 {
			t.Fatalf("case %d: missing pairs: %+v", c, audit)
		}
		rep := soundness.ValidateView(o, v)
		if rep.Sound && audit.FalsePairs != 0 {
			t.Fatalf("case %d: sound view with false pairs: %+v", c, audit)
		}
		// View lineage ⊇ true lineage (outside the home composite).
		ve := NewViewEngine(v)
		for task := 0; task < wf.N(); task++ {
			viewSet := map[int]bool{}
			for _, x := range ve.TaskLineage(task) {
				viewSet[x] = true
			}
			home := v.CompOf(task)
			for _, x := range e.Lineage(task) {
				if v.CompOf(x) != home && !viewSet[x] {
					t.Fatalf("case %d: view lineage misses true ancestor %d of %d", c, x, task)
				}
			}
		}
	}
}

func TestViewEngineClosureSmaller(t *testing.T) {
	wf, v := repo.Figure1()
	e := NewEngine(wf)
	ve := NewViewEngine(v)
	if ve.ClosurePairs() >= e.ClosurePairs() {
		t.Fatalf("view closure (%d) should be smaller than task closure (%d)",
			ve.ClosurePairs(), e.ClosurePairs())
	}
}

func TestTrace(t *testing.T) {
	wf, _ := repo.Figure1()
	e := NewEngine(wf)
	tr := Execute(wf, "run1")
	if len(tr.Artifacts()) != wf.N() {
		t.Fatalf("artifacts = %d", len(tr.Artifacts()))
	}
	if len(tr.Used()) != wf.M() {
		t.Fatalf("used edges = %d, want %d", len(tr.Used()), wf.M())
	}
	art, err := tr.ArtifactOf("8")
	if err != nil || art.Producer != "8" || !strings.Contains(art.ID, "run1/8") {
		t.Fatalf("artifact = %+v, %v", art, err)
	}
	if _, err := tr.ArtifactOf("ghost"); err == nil {
		t.Fatal("unknown task must error")
	}
	lin, err := tr.ArtifactLineage(e, "8")
	if err != nil || len(lin) != 4 {
		t.Fatalf("artifact lineage = %v, %v", lin, err)
	}
	if _, err := tr.ArtifactLineage(e, "ghost"); err == nil {
		t.Fatal("unknown task must error")
	}
	var buf bytes.Buffer
	if err := tr.WriteOPM(&buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"wasGeneratedBy", "run1/8/out", `"processes"`} {
		if !strings.Contains(buf.String(), want) {
			t.Fatalf("OPM export missing %q", want)
		}
	}
}

func TestAuditViewMismatchPanics(t *testing.T) {
	wf, _ := repo.Figure1()
	f3 := repo.Figure3()
	e := NewEngine(wf)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	AuditView(e, f3.View)
}

// --- helpers ----------------------------------------------------------------

func randomWorkflow(rng *rand.Rand, n int) *workflow.Workflow {
	b := workflow.NewBuilder("rnd")
	ids := make([]string, n)
	for i := range ids {
		ids[i] = "t" + string(rune('0'+i/10)) + string(rune('0'+i%10))
		b.AddTask(ids[i])
	}
	perm := rng.Perm(n)
	p := 0.1 + rng.Float64()*0.25
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Float64() < p {
				b.AddEdge(ids[perm[i]], ids[perm[j]])
			}
		}
	}
	wf, err := b.Build()
	if err != nil {
		panic(err)
	}
	return wf
}

func randomView(rng *rand.Rand, wf *workflow.Workflow) *view.View {
	k := 1 + rng.Intn(wf.N())
	part := make([]int, wf.N())
	for i := 0; i < k; i++ {
		part[i] = i
	}
	for i := k; i < wf.N(); i++ {
		part[i] = rng.Intn(k)
	}
	rng.Shuffle(len(part), func(i, j int) { part[i], part[j] = part[j], part[i] })
	v, err := view.FromPartition(wf, "rv", part)
	if err != nil {
		panic(err)
	}
	return v
}

// TestAncestorsConcurrentBuild hammers the lazy ancestor-transpose build
// from many goroutines; under -race this pins the sync.Once guard that
// makes a cached lineage engine safe for concurrent first use.
func TestAncestorsConcurrentBuild(t *testing.T) {
	wf, _ := repo.Figure1()
	e := NewEngine(wf)
	want := e.Lineage(wf.MustIndex("11"))

	e2 := NewEngine(wf)
	var wg sync.WaitGroup
	results := make([][]int, 16)
	for i := range results {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = e2.Lineage(wf.MustIndex("11"))
		}(i)
	}
	wg.Wait()
	for i, got := range results {
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("goroutine %d: lineage %v, want %v", i, got, want)
		}
	}
}

// TestNewEngineWithClosures pins that a registry-backed engine sharing
// an incrementally maintained transpose answers identically to the
// self-built one, and stays current through in-place edge mutations.
func TestNewEngineWithClosures(t *testing.T) {
	wf, _ := repo.Figure1()
	ic, err := dag.NewIncrementalClosure(wf.Graph())
	if err != nil {
		t.Fatal(err)
	}
	live := NewEngineWithClosures(wf, ic.Fwd(), ic.Rev())
	fresh := NewEngine(wf)
	for i := 0; i < wf.N(); i++ {
		if !reflect.DeepEqual(live.Lineage(i), fresh.Lineage(i)) {
			t.Fatalf("task %d: shared-transpose lineage diverges", i)
		}
	}

	// Mutate in place: 3→8 gives task 8 the whole 1-2-3 ancestry. The
	// live engine must see it without any rebuild.
	u, v := wf.MustIndex("3"), wf.MustIndex("8")
	if _, err := ic.AddEdge(u, v, nil); err != nil {
		t.Fatal(err)
	}
	wf.StructureChanged()
	if !reflect.DeepEqual(live.Lineage(v), NewEngine(wf).Lineage(v)) {
		t.Fatal("live engine stale after in-place edge mutation")
	}
}
