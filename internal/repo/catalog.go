package repo

import (
	"fmt"
	"sort"

	"wolves/internal/view"
	"wolves/internal/workflow"
)

// ViewSpec pairs a view with its expected diagnosis, so the E8 survey
// and the test suite can pin every fixture.
type ViewSpec struct {
	View *view.View
	// WantSound is the hand-verified expected validator verdict.
	WantSound bool
	// Origin mimics the paper's sources: "expert" (hand-defined, as in
	// Kepler/myExperiment) or "auto" (Biton-style construction).
	Origin string
}

// Entry is one workflow of the simulated repository.
type Entry struct {
	Key      string
	Title    string
	Domain   string
	Source   string // kepler-sim | myexperiment-sim | paper
	Workflow *workflow.Workflow
	Views    []ViewSpec
	Notes    string
}

// Catalog builds the full simulated repository. Entries are freshly
// constructed on every call (workflows are immutable but cheap).
func Catalog() []*Entry {
	entries := []*Entry{
		phylogenomicsEntry(),
		figure3Entry(),
		genomeAssembly(),
		climateEnsemble(),
		astroPipeline(),
		etlSales(),
		mlTraining(),
		textMining(),
		proteomics(),
		weatherForecast(),
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].Key < entries[j].Key })
	return entries
}

// Get returns the catalog entry with the given key.
func Get(key string) (*Entry, error) {
	for _, e := range Catalog() {
		if e.Key == key {
			return e, nil
		}
	}
	return nil, fmt.Errorf("repo: no workflow %q (try `wolves repo list`)", key)
}

// Keys returns all catalog keys, sorted.
func Keys() []string {
	var out []string
	for _, e := range Catalog() {
		out = append(out, e.Key)
	}
	return out
}

func phylogenomicsEntry() *Entry {
	wf, v := Figure1()
	corrected, err := view.NewBuilder(wf, "fig1-sound").
		Assign("13", "1", "2").
		Assign("14", "3").
		Assign("15", "6").
		Assign("16a", "4", "5").
		Assign("16b", "7", "8").
		Assign("19", "9", "10", "11", "12").
		Build()
	if err != nil {
		panic("repo: fig1 corrected view must build: " + err.Error())
	}
	return &Entry{
		Key:      "phylogenomics",
		Title:    "Phylogenomic inference of protein biological functions",
		Domain:   "molecular biology",
		Source:   "paper",
		Workflow: wf,
		Views: []ViewSpec{
			{View: v, WantSound: false, Origin: "expert"},
			{View: corrected, WantSound: true, Origin: "expert"},
		},
		Notes: "Figure 1 of the paper; composite 16 bundles the annotation and alignment branches.",
	}
}

func figure3Entry() *Entry {
	f := Figure3()
	return &Entry{
		Key:      "fig3-running-example",
		Title:    "Running example of Section 2.2",
		Domain:   "synthetic",
		Source:   "paper",
		Workflow: f.Workflow,
		Views: []ViewSpec{
			{View: f.View, WantSound: false, Origin: "expert"},
		},
		Notes: "Reconstructed from the Figure 3 prose; weak split = 8 blocks, strong = 5.",
	}
}

// buildWF panics on error: catalog fixtures are compile-time data.
func buildWF(b *workflow.Builder) *workflow.Workflow {
	wf, err := b.Build()
	if err != nil {
		panic("repo: fixture workflow must build: " + err.Error())
	}
	return wf
}

func buildView(wf *workflow.Workflow, name string, assign map[string][]string) *view.View {
	v, err := view.FromAssignments(wf, name, assign)
	if err != nil {
		panic("repo: fixture view must build: " + err.Error())
	}
	return v
}

func genomeAssembly() *Entry {
	b := workflow.NewBuilder("genome-assembly")
	for _, t := range []string{"reads", "qc", "trim", "assemble", "polish", "align_ref", "call_variants", "scaffold", "annotate", "report"} {
		b.AddTask(t)
	}
	b.Chain("reads", "qc", "trim")
	b.Chain("trim", "assemble", "polish")
	b.Chain("trim", "align_ref", "call_variants")
	b.AddEdge("polish", "scaffold")
	b.AddEdge("call_variants", "scaffold")
	b.Chain("scaffold", "annotate", "report")
	wf := buildWF(b)
	// Unsound: bundles the de-novo and reference branches; assemble ∈ in
	// cannot reach call_variants ∈ out.
	bad := buildView(wf, "assembly-grouped", map[string][]string{
		"input":    {"reads", "qc", "trim"},
		"assembly": {"assemble", "polish", "align_ref", "call_variants"},
		"finish":   {"scaffold", "annotate", "report"},
	})
	good := buildView(wf, "assembly-branches", map[string][]string{
		"input":  {"reads", "qc", "trim"},
		"denovo": {"assemble", "polish"},
		"refmap": {"align_ref", "call_variants"},
		"finish": {"scaffold", "annotate", "report"},
	})
	return &Entry{
		Key: "genome-assembly", Title: "Hybrid de-novo + reference genome assembly",
		Domain: "genomics", Source: "kepler-sim", Workflow: wf,
		Views: []ViewSpec{
			{View: bad, WantSound: false, Origin: "expert"},
			{View: good, WantSound: true, Origin: "expert"},
		},
		Notes: "Two analysis branches between trim and scaffold; bundling them is the Figure-1 mistake.",
	}
}

func climateEnsemble() *Entry {
	b := workflow.NewBuilder("climate-ensemble")
	b.AddTask("forcing")
	b.AddTask("spinup")
	b.AddEdge("forcing", "spinup")
	for i := 1; i <= 3; i++ {
		run := fmt.Sprintf("member%d_run", i)
		post := fmt.Sprintf("member%d_post", i)
		b.AddTask(run)
		b.AddTask(post)
		b.AddEdge("spinup", run)
		b.AddEdge(run, post)
	}
	b.AddTask("ensemble_mean")
	b.AddTask("anomaly_maps")
	b.AddTask("publish")
	for i := 1; i <= 3; i++ {
		b.AddEdge(fmt.Sprintf("member%d_post", i), "ensemble_mean")
	}
	b.Chain("ensemble_mean", "anomaly_maps", "publish")
	wf := buildWF(b)
	bad := buildView(wf, "ensemble-grouped", map[string][]string{
		"setup": {"forcing", "spinup"},
		"members": {"member1_run", "member1_post", "member2_run", "member2_post",
			"member3_run", "member3_post"},
		"analysis": {"ensemble_mean", "anomaly_maps", "publish"},
	})
	good := buildView(wf, "ensemble-permember", map[string][]string{
		"setup":    {"forcing", "spinup"},
		"m1":       {"member1_run", "member1_post"},
		"m2":       {"member2_run", "member2_post"},
		"m3":       {"member3_run", "member3_post"},
		"analysis": {"ensemble_mean", "anomaly_maps", "publish"},
	})
	return &Entry{
		Key: "climate-ensemble", Title: "Climate model ensemble with post-processing",
		Domain: "climate science", Source: "kepler-sim", Workflow: wf,
		Views: []ViewSpec{
			{View: bad, WantSound: false, Origin: "expert"},
			{View: good, WantSound: true, Origin: "expert"},
		},
		Notes: "Three independent ensemble members bundled into one composite is unsound.",
	}
}

func astroPipeline() *Entry {
	b := workflow.NewBuilder("astro-image")
	for _, t := range []string{"raw", "bias", "flat", "align", "stack", "catalog", "publish"} {
		b.AddTask(t)
	}
	b.Chain("raw", "bias", "flat", "align", "stack", "catalog", "publish")
	wf := buildWF(b)
	good := buildView(wf, "astro-stages", map[string][]string{
		"calibrate": {"raw", "bias", "flat"},
		"combine":   {"align", "stack"},
		"release":   {"catalog", "publish"},
	})
	return &Entry{
		Key: "astro-image", Title: "Astronomical image calibration pipeline",
		Domain: "astronomy", Source: "myexperiment-sim", Workflow: wf,
		Views: []ViewSpec{
			{View: good, WantSound: true, Origin: "expert"},
		},
		Notes: "A pure chain: every interval view is sound.",
	}
}

func etlSales() *Entry {
	b := workflow.NewBuilder("etl-sales")
	for _, t := range []string{"extract_orders", "extract_customers", "clean_orders",
		"clean_customers", "join", "aggregate", "report_pdf", "dashboard"} {
		b.AddTask(t)
	}
	b.Chain("extract_orders", "clean_orders", "join")
	b.Chain("extract_customers", "clean_customers", "join")
	b.Chain("join", "aggregate")
	b.AddEdge("aggregate", "report_pdf")
	b.AddEdge("aggregate", "dashboard")
	wf := buildWF(b)
	bad := buildView(wf, "etl-stage-banded", map[string][]string{
		"extract":   {"extract_orders", "extract_customers"},
		"clean":     {"clean_orders", "clean_customers"},
		"integrate": {"join", "aggregate"},
		"serve":     {"report_pdf", "dashboard"},
	})
	good := buildView(wf, "etl-per-source", map[string][]string{
		"orders":    {"extract_orders", "clean_orders"},
		"customers": {"extract_customers", "clean_customers"},
		"integrate": {"join", "aggregate"},
		"serve":     {"report_pdf", "dashboard"},
	})
	return &Entry{
		Key: "etl-sales", Title: "Retail ETL with two sources",
		Domain: "business", Source: "myexperiment-sim", Workflow: wf,
		Views: []ViewSpec{
			{View: bad, WantSound: false, Origin: "expert"},
			{View: good, WantSound: true, Origin: "expert"},
		},
		Notes: "Stage-banded views bundle the two cleaning tasks: clean_orders cannot reach clean_customers.",
	}
}

func mlTraining() *Entry {
	b := workflow.NewBuilder("ml-training")
	for _, t := range []string{"ingest", "featurize", "split", "train_model", "eval_model",
		"train_baseline", "eval_baseline", "compare", "report"} {
		b.AddTask(t)
	}
	b.Chain("ingest", "featurize", "split")
	b.Chain("split", "train_model", "eval_model", "compare")
	b.Chain("split", "train_baseline", "eval_baseline", "compare")
	b.AddEdge("compare", "report")
	wf := buildWF(b)
	bad := buildView(wf, "ml-train-grouped", map[string][]string{
		"prep":     {"ingest", "featurize", "split"},
		"training": {"train_model", "train_baseline"},
		"eval":     {"eval_model", "eval_baseline"},
		"wrap":     {"compare", "report"},
	})
	good := buildView(wf, "ml-per-arm", map[string][]string{
		"prep":     {"ingest", "featurize", "split"},
		"model":    {"train_model", "eval_model"},
		"baseline": {"train_baseline", "eval_baseline"},
		"wrap":     {"compare", "report"},
	})
	return &Entry{
		Key: "ml-training", Title: "Model-vs-baseline training comparison",
		Domain: "machine learning", Source: "myexperiment-sim", Workflow: wf,
		Views: []ViewSpec{
			{View: bad, WantSound: false, Origin: "auto"},
			{View: good, WantSound: true, Origin: "expert"},
		},
		Notes: "Grouping by pipeline stage rather than by arm is unsound.",
	}
}

func textMining() *Entry {
	b := workflow.NewBuilder("text-mining")
	for _, t := range []string{"crawl", "dedupe", "tokenize", "tfidf", "cluster",
		"ner", "link_entities", "index", "search_ui"} {
		b.AddTask(t)
	}
	b.Chain("crawl", "dedupe", "tokenize")
	b.Chain("tokenize", "tfidf", "cluster", "index")
	b.Chain("tokenize", "ner", "link_entities", "index")
	b.AddEdge("index", "search_ui")
	wf := buildWF(b)
	bad := buildView(wf, "text-analysis-grouped", map[string][]string{
		"acquire":  {"crawl", "dedupe", "tokenize"},
		"analysis": {"tfidf", "cluster", "ner", "link_entities"},
		"serve":    {"index", "search_ui"},
	})
	good := buildView(wf, "text-per-branch", map[string][]string{
		"acquire":  {"crawl", "dedupe", "tokenize"},
		"topics":   {"tfidf", "cluster"},
		"entities": {"ner", "link_entities"},
		"serve":    {"index", "search_ui"},
	})
	return &Entry{
		Key: "text-mining", Title: "Corpus mining with topic and entity branches",
		Domain: "information retrieval", Source: "myexperiment-sim", Workflow: wf,
		Views: []ViewSpec{
			{View: bad, WantSound: false, Origin: "expert"},
			{View: good, WantSound: true, Origin: "expert"},
		},
		Notes: "The analysis composite mixes two parallel branches.",
	}
}

func proteomics() *Entry {
	b := workflow.NewBuilder("proteomics-ms")
	for _, t := range []string{"sample", "digest", "lc_ms", "identify", "validate",
		"quantify", "normalize", "integrate", "report"} {
		b.AddTask(t)
	}
	b.Chain("sample", "digest", "lc_ms")
	b.Chain("lc_ms", "identify", "validate", "integrate")
	b.Chain("lc_ms", "quantify", "normalize", "integrate")
	b.AddEdge("integrate", "report")
	wf := buildWF(b)
	bad := buildView(wf, "ms-analysis-grouped", map[string][]string{
		"wet":      {"sample", "digest", "lc_ms"},
		"analysis": {"identify", "validate", "quantify", "normalize"},
		"out":      {"integrate", "report"},
	})
	return &Entry{
		Key: "proteomics-ms", Title: "Mass-spectrometry proteomics quantification",
		Domain: "proteomics", Source: "kepler-sim", Workflow: wf,
		Views: []ViewSpec{
			{View: bad, WantSound: false, Origin: "auto"},
		},
		Notes: "Identification and quantification branches bundled: unsound.",
	}
}

func weatherForecast() *Entry {
	b := workflow.NewBuilder("weather-forecast")
	for _, t := range []string{"obs_satellite", "obs_station", "qc_satellite", "qc_station",
		"assimilate", "forecast", "verify", "publish"} {
		b.AddTask(t)
	}
	b.Chain("obs_satellite", "qc_satellite", "assimilate")
	b.Chain("obs_station", "qc_station", "assimilate")
	b.Chain("assimilate", "forecast")
	b.AddEdge("forecast", "verify")
	b.AddEdge("forecast", "publish")
	wf := buildWF(b)
	good := buildView(wf, "forecast-per-source", map[string][]string{
		"satellite": {"obs_satellite", "qc_satellite"},
		"stations":  {"obs_station", "qc_station"},
		"model":     {"assimilate", "forecast"},
		"verify":    {"verify"},
		"publish":   {"publish"},
	})
	return &Entry{
		Key: "weather-forecast", Title: "Operational forecast with data assimilation",
		Domain: "meteorology", Source: "kepler-sim", Workflow: wf,
		Views: []ViewSpec{
			{View: good, WantSound: true, Origin: "expert"},
		},
		Notes: "Per-source grouping keeps every composite single-entry: sound.",
	}
}
