package repo

import (
	"strings"
	"testing"

	"wolves/internal/core"
	"wolves/internal/soundness"
)

func TestCatalogExpectationsHold(t *testing.T) {
	entries := Catalog()
	if len(entries) != 10 {
		t.Fatalf("catalog has %d entries, want 10", len(entries))
	}
	unsoundViews := 0
	for _, e := range entries {
		if e.Key == "" || e.Workflow == nil || len(e.Views) == 0 {
			t.Fatalf("incomplete entry %+v", e)
		}
		o := soundness.NewOracle(e.Workflow)
		for _, vs := range e.Views {
			rep := soundness.ValidateView(o, vs.View)
			if rep.Sound != vs.WantSound {
				t.Errorf("%s/%s: sound=%v, fixture expects %v (unsound: %v)",
					e.Key, vs.View.Name(), rep.Sound, vs.WantSound, rep.Unsound)
			}
			if !vs.WantSound {
				unsoundViews++
			}
		}
	}
	// The paper's survey finding: the repository does contain unsound views.
	if unsoundViews < 5 {
		t.Fatalf("only %d unsound views; fixtures should mirror the survey", unsoundViews)
	}
}

func TestCatalogViewsAreCorrectable(t *testing.T) {
	for _, e := range Catalog() {
		o := soundness.NewOracle(e.Workflow)
		for _, vs := range e.Views {
			if vs.WantSound {
				continue
			}
			vc, err := core.CorrectView(o, vs.View, core.Strong, nil)
			if err != nil {
				t.Fatalf("%s/%s: %v", e.Key, vs.View.Name(), err)
			}
			if rep := soundness.ValidateView(o, vc.Corrected); !rep.Sound {
				t.Fatalf("%s/%s: corrected view still unsound", e.Key, vs.View.Name())
			}
			if vc.CompositesAfter <= vc.CompositesBefore {
				t.Fatalf("%s/%s: splitting must increase composite count", e.Key, vs.View.Name())
			}
		}
	}
}

func TestGetAndKeys(t *testing.T) {
	keys := Keys()
	if len(keys) != 10 {
		t.Fatalf("keys = %v", keys)
	}
	for i := 1; i < len(keys); i++ {
		if keys[i-1] >= keys[i] {
			t.Fatalf("keys not sorted: %v", keys)
		}
	}
	e, err := Get("phylogenomics")
	if err != nil || e.Title == "" {
		t.Fatalf("Get = %+v, %v", e, err)
	}
	if _, err := Get("nope"); err == nil || !strings.Contains(err.Error(), "nope") {
		t.Fatalf("missing-key error = %v", err)
	}
}

func TestFigure3FixtureShape(t *testing.T) {
	f := Figure3()
	if f.Workflow.N() != 20 {
		t.Fatalf("fig3 workflow N = %d, want 20 (12 members + 8 context)", f.Workflow.N())
	}
	if len(f.T) != 12 {
		t.Fatalf("fig3 T has %d members", len(f.T))
	}
	if f.View.N() != 9 {
		t.Fatalf("fig3 view composites = %d, want 9", f.View.N())
	}
	comp, ok := f.View.CompositeByID("T")
	if !ok || comp.Size() != 12 {
		t.Fatalf("composite T = %+v", comp)
	}
}

func TestFigure1FixtureShape(t *testing.T) {
	wf, v := Figure1()
	if wf.N() != 12 || wf.M() != 12 {
		t.Fatalf("fig1 workflow: %v", wf)
	}
	if v.N() != 7 {
		t.Fatalf("fig1 view composites = %d, want 7 (13..19)", v.N())
	}
	// The view graph is exactly the one described in the paper.
	q := v.Graph()
	idx := func(id string) int {
		i, ok := v.CompIndex(id)
		if !ok {
			t.Fatalf("composite %q missing", id)
		}
		return i
	}
	wantEdges := [][2]string{
		{"13", "14"}, {"13", "15"}, {"14", "16"}, {"15", "16"},
		{"16", "17"}, {"16", "18"}, {"17", "19"}, {"18", "19"},
	}
	if q.M() != len(wantEdges) {
		t.Fatalf("view graph has %d edges, want %d", q.M(), len(wantEdges))
	}
	for _, e := range wantEdges {
		if !q.HasEdge(idx(e[0]), idx(e[1])) {
			t.Fatalf("view graph missing edge %v", e)
		}
	}
}
