package repo

import (
	"wolves/internal/view"
	"wolves/internal/workflow"
)

// Fig3 packages the Figure 3 running example. The figure itself is
// unreadable in the paper source, so the instance was reconstructed from
// the prose constraints (see DESIGN.md):
//
//   - the composite task T over {a,b,c,d,e,f,g,h,i,j,k,m} is unsound;
//   - a weakly local optimal split has 8 blocks with c, d, f, g left as
//     singletons (Figure 3(b));
//   - merging f and g alone is unsound, witnessed by g ∈ in, f ∈ out;
//   - merging {c,d,f,g} yields a sound block, giving the strongly local
//     optimal 5-block split of Figure 3(c).
type Fig3 struct {
	Workflow *workflow.Workflow
	// View has one composite "T" holding the 12 letters plus singleton
	// composites for the external context tasks.
	View *view.View
	// T lists the task indices of the unsound composite.
	T []int
	// WeakBlocks and StrongBlocks are the expected splits, as task IDs.
	WeakBlocks   [][]string
	StrongBlocks [][]string
}

// Figure3 builds the reconstructed running example.
func Figure3() *Fig3 {
	b := workflow.NewBuilder("fig3")
	for _, id := range []string{"a", "b", "c", "d", "e", "f", "g", "h", "i", "j", "k", "m",
		"x1", "x2", "x3", "x4", "y1", "y2", "y3", "y4"} {
		b.AddTask(id)
	}
	edges := [][2]string{
		// Entry chains, cross-feeding the biclique.
		{"a", "b"}, {"e", "h"},
		{"b", "c"}, {"b", "d"}, {"h", "c"}, {"h", "d"},
		// The biclique c,d → f,g.
		{"c", "f"}, {"c", "g"}, {"d", "f"}, {"d", "g"},
		// Lane bypasses and exit chains.
		{"b", "i"}, {"h", "k"},
		{"i", "j"}, {"f", "k"}, {"g", "k"}, {"k", "m"},
		// External context.
		{"x1", "a"}, {"x2", "e"}, {"x3", "i"}, {"x4", "k"},
		{"f", "y1"}, {"g", "y4"}, {"j", "y2"}, {"m", "y3"},
	}
	for _, e := range edges {
		b.AddEdge(e[0], e[1])
	}
	wf, err := b.Build()
	if err != nil {
		panic("repo: figure 3 workflow must build: " + err.Error())
	}
	vb := view.NewBuilder(wf, "fig3a").
		Assign("T", "a", "b", "c", "d", "e", "f", "g", "h", "i", "j", "k", "m").
		Named("T", "Unsound Composite Task")
	for _, ext := range []string{"x1", "x2", "x3", "x4", "y1", "y2", "y3", "y4"} {
		vb.Assign("X-"+ext, ext)
	}
	v, err := vb.Build()
	if err != nil {
		panic("repo: figure 3 view must build: " + err.Error())
	}
	f := &Fig3{Workflow: wf, View: v}
	for _, id := range []string{"a", "b", "c", "d", "e", "f", "g", "h", "i", "j", "k", "m"} {
		f.T = append(f.T, wf.MustIndex(id))
	}
	f.WeakBlocks = [][]string{
		{"a", "b"}, {"c"}, {"d"}, {"e", "h"}, {"f"}, {"g"}, {"i", "j"}, {"k", "m"},
	}
	f.StrongBlocks = [][]string{
		{"a", "b"}, {"c", "d", "f", "g"}, {"e", "h"}, {"i", "j"}, {"k", "m"},
	}
	return f
}
