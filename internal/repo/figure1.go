// Package repo is the simulated workflow repository: hand-modelled
// scientific and business workflows with expert-style views, standing in
// for the Kepler [1] and myExperiment [5] repositories the paper
// surveyed. It also hosts the two instances defined by the paper itself:
// the Figure 1 phylogenomics case study and the Figure 3 running example.
//
// Several views are deliberately unsound, mirroring the paper's survey
// finding that "a well-curated workflow repository revealed unsound
// views"; each entry records the expected diagnosis so the E8 experiment
// and the test suite can pin it.
package repo

import (
	"wolves/internal/view"
	"wolves/internal/workflow"
)

// Figure1 builds the phylogenomics workflow of Figure 1(a) and the view
// of Figure 1(b).
//
// Tasks (numbered as in the paper):
//
//	1 Select entries (GenBank)   7 Create alignment
//	2 Split entries              8 Format alignment
//	3 Extract annotations        9 Check additional annotations
//	4 Curate annotations        10 Process additional annotations
//	5 Format annotations        11 Build phylogenomic tree
//	6 Extract sequences         12 Display tree
//
// The view groups them into composites 13–19; composite 16 = {4,7} is
// unsound: 4 ∈ 16.in cannot reach 7 ∈ 16.out (the paper's witness), and
// the view gains the spurious path 14→…→18 although task 3 (inside 14)
// never reaches task 8 (inside 18).
func Figure1() (*workflow.Workflow, *view.View) {
	wf, err := workflow.NewBuilder("phylogenomics").
		AddTask("1", workflow.WithName("Select entries"), workflow.WithKind("source")).
		AddTask("2", workflow.WithName("Split entries")).
		AddTask("3", workflow.WithName("Extract annotations")).
		AddTask("4", workflow.WithName("Curate annotations")).
		AddTask("5", workflow.WithName("Format annotations")).
		AddTask("6", workflow.WithName("Extract sequences")).
		AddTask("7", workflow.WithName("Create alignment")).
		AddTask("8", workflow.WithName("Format alignment")).
		AddTask("9", workflow.WithName("Check additional annotations"), workflow.WithKind("source")).
		AddTask("10", workflow.WithName("Process additional annotations")).
		AddTask("11", workflow.WithName("Build phylogenomic tree")).
		AddTask("12", workflow.WithName("Display tree"), workflow.WithKind("sink")).
		AddEdge("1", "2").
		AddEdge("2", "3").
		AddEdge("2", "6").
		AddEdge("3", "4").
		AddEdge("4", "5").
		AddEdge("5", "11").
		AddEdge("6", "7").
		AddEdge("7", "8").
		AddEdge("8", "11").
		AddEdge("9", "10").
		AddEdge("10", "11").
		AddEdge("11", "12").
		Build()
	if err != nil {
		panic("repo: figure 1 workflow must build: " + err.Error())
	}
	v, err := view.NewBuilder(wf, "fig1b").
		Assign("13", "1", "2").Named("13", "Prepare Entries").
		Assign("14", "3").Named("14", "Extract Annotations").
		Assign("15", "6").Named("15", "Extract Sequences").
		Assign("16", "4", "7").Named("16", "Curate & Align").
		Assign("17", "5").Named("17", "Format Annotations").
		Assign("18", "8").Named("18", "Format Alignment").
		Assign("19", "9", "10", "11", "12").Named("19", "Build Phylo Tree").
		Build()
	if err != nil {
		panic("repo: figure 1 view must build: " + err.Error())
	}
	return wf, v
}
