package dag

import (
	"errors"
	"math/rand"
	"testing"

	"wolves/internal/bitset"
)

// checkAgainstScratch asserts that ic's closures are byte-identical to a
// from-scratch rebuild of its graph.
func checkAgainstScratch(t *testing.T, ic *IncrementalClosure) {
	t.Helper()
	scratch := ic.Graph().Reachability()
	if !ic.Fwd().Matrix().Equal(scratch.Matrix()) {
		t.Fatalf("forward closure diverged from from-scratch rebuild (n=%d, m=%d)",
			ic.Graph().N(), ic.Graph().M())
	}
	if !ic.Rev().Matrix().Equal(transpose(scratch).Matrix()) {
		t.Fatalf("transposed closure diverged from from-scratch transpose (n=%d, m=%d)",
			ic.Graph().N(), ic.Graph().M())
	}
}

// TestIncrementalClosureRandomEquivalence is the satellite property test:
// after each of 1k random edge insertions on random DAGs (sizes 8–128),
// the incrementally maintained rows are byte-identical to a from-scratch
// Reachability() rebuild, and the transposed rows to its transpose.
// Cycle rejections are cross-checked against the scratch closure, and
// occasional Grow calls exercise the node-addition path mid-stream.
func TestIncrementalClosureRandomEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	insertions := 0
	for insertions < 1000 {
		n := 8 + rng.Intn(121) // 8..128
		g := New(n)
		ic, err := NewIncrementalClosure(g)
		if err != nil {
			t.Fatalf("empty graph rejected: %v", err)
		}
		steps := n * 3
		for s := 0; s < steps && insertions < 1000; s++ {
			if rng.Intn(50) == 0 {
				k := 1 + rng.Intn(3)
				ic.Grow(k)
				n = ic.N()
				checkAgainstScratch(t, ic)
				continue
			}
			u, v := rng.Intn(n), rng.Intn(n)
			if u == v {
				continue
			}
			wouldCycle := ic.Fwd().Reaches(v, u)
			dirty := bitset.New(n)
			added, err := ic.AddEdge(u, v, dirty)
			if wouldCycle {
				if !errors.Is(err, ErrCycle) {
					t.Fatalf("edge %d→%d closes a cycle but AddEdge returned %v", u, v, err)
				}
				continue
			}
			if err != nil {
				t.Fatalf("AddEdge(%d,%d): %v", u, v, err)
			}
			insertions++
			if added {
				// Dirty must cover both endpoints.
				if !dirty.Test(u) || !dirty.Test(v) {
					t.Fatalf("dirty set %v misses an endpoint of %d→%d", dirty, u, v)
				}
			}
			checkAgainstScratch(t, ic)
		}
	}
}

// TestIncrementalClosureDirtySet pins that the dirty set is exactly the
// changed-row nodes plus the edge endpoints: rows of nodes outside it
// are unchanged, rows of non-endpoint nodes inside it changed.
func TestIncrementalClosureDirtySet(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for round := 0; round < 50; round++ {
		n := 8 + rng.Intn(57)
		g := New(n)
		ic, _ := NewIncrementalClosure(g)
		for s := 0; s < n*2; s++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u == v || ic.Fwd().Reaches(v, u) {
				continue
			}
			before := ic.Fwd().Matrix().Clone()
			dirty := bitset.New(n)
			added, err := ic.AddEdge(u, v, dirty)
			if err != nil {
				t.Fatalf("AddEdge(%d,%d): %v", u, v, err)
			}
			if !added {
				if dirty.Any() {
					t.Fatalf("duplicate edge %d→%d produced dirty nodes %v", u, v, dirty)
				}
				continue
			}
			for w := 0; w < n; w++ {
				beforeRow := before.RowView(w)
				changed := !beforeRow.Equal(ic.Fwd().Row(w))
				if changed && !dirty.Test(w) {
					t.Fatalf("row %d changed but is not dirty after %d→%d", w, u, v)
				}
				if !changed && dirty.Test(w) && w != u && w != v {
					t.Fatalf("row %d unchanged but dirty (and not an endpoint) after %d→%d", w, u, v)
				}
			}
		}
	}
}

// TestIncrementalClosureRollback verifies that a rollback after a
// partially applied batch restores the exact pre-batch state.
func TestIncrementalClosureRollback(t *testing.T) {
	g := New(4)
	g.MustAddEdge(0, 1)
	ic, err := NewIncrementalClosure(g)
	if err != nil {
		t.Fatal(err)
	}
	wantFwd := ic.Fwd().Matrix().Clone()
	wantM := g.M()

	// Apply a batch: one new node, two edges, then pretend the next edge
	// failed and roll everything back.
	ic.Grow(1)
	applied := [][2]int{}
	for _, e := range [][2]int{{1, 2}, {2, 4}} {
		if _, err := ic.AddEdge(e[0], e[1], nil); err != nil {
			t.Fatalf("AddEdge(%v): %v", e, err)
		}
		applied = append(applied, e)
	}
	ic.Rollback(4, applied)

	if ic.N() != 4 || ic.Graph().M() != wantM {
		t.Fatalf("rollback left n=%d m=%d, want n=4 m=%d", ic.N(), ic.Graph().M(), wantM)
	}
	if !ic.Fwd().Matrix().Equal(wantFwd) {
		t.Fatal("rollback did not restore the forward closure")
	}
	checkAgainstScratch(t, ic)
}

// TestIncrementalClosureRejectsCyclicGraph pins the constructor contract.
func TestIncrementalClosureRejectsCyclicGraph(t *testing.T) {
	g := New(2)
	g.MustAddEdge(0, 1)
	g.MustAddEdge(1, 0)
	if _, err := NewIncrementalClosure(g); !errors.Is(err, ErrCycle) {
		t.Fatalf("cyclic graph accepted: %v", err)
	}
}

// TestGraphPopEdgeAndTruncate covers the LIFO rollback primitives.
func TestGraphPopEdgeAndTruncate(t *testing.T) {
	g := New(3)
	g.MustAddEdge(0, 1)
	first := g.AddNodes(2)
	if first != 3 || g.N() != 5 {
		t.Fatalf("AddNodes: first=%d n=%d, want 3, 5", first, g.N())
	}
	g.MustAddEdge(1, 3)
	g.MustAddEdge(3, 4)
	g.PopEdge(3, 4)
	g.PopEdge(1, 3)
	g.TruncateNodes(3)
	if g.N() != 3 || g.M() != 1 {
		t.Fatalf("after rollback: n=%d m=%d, want 3, 1", g.N(), g.M())
	}
	if !g.HasEdge(0, 1) {
		t.Fatal("surviving edge 0→1 lost")
	}
	// The sorted mirror must stay consistent through pops past the
	// mirror-building threshold.
	big := New(mirrorMinDeg + 4)
	for v := 1; v <= mirrorMinDeg+2; v++ {
		big.MustAddEdge(0, v)
	}
	big.PopEdge(0, mirrorMinDeg+2)
	if big.HasEdge(0, mirrorMinDeg+2) {
		t.Fatal("popped edge still visible through the sorted mirror")
	}
	if !big.HasEdge(0, mirrorMinDeg+1) {
		t.Fatal("surviving mirrored edge lost")
	}
}
