package dag

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// diamond builds 0→1, 0→2, 1→3, 2→3.
func diamond(t *testing.T) *Graph {
	t.Helper()
	g := New(4)
	g.MustAddEdge(0, 1)
	g.MustAddEdge(0, 2)
	g.MustAddEdge(1, 3)
	g.MustAddEdge(2, 3)
	return g
}

func TestAddEdgeBasics(t *testing.T) {
	g := New(3)
	ok, err := g.AddEdge(0, 1)
	if err != nil || !ok {
		t.Fatalf("AddEdge = %v, %v", ok, err)
	}
	ok, err = g.AddEdge(0, 1)
	if err != nil || ok {
		t.Fatalf("duplicate AddEdge = %v, %v; want ignored", ok, err)
	}
	if g.M() != 1 {
		t.Fatalf("M = %d, want 1", g.M())
	}
	if _, err := g.AddEdge(1, 1); err == nil {
		t.Fatal("self-loop must error")
	}
	if !g.HasEdge(0, 1) || g.HasEdge(1, 0) {
		t.Fatal("HasEdge wrong")
	}
	if g.OutDeg(0) != 1 || g.InDeg(1) != 1 || g.InDeg(0) != 0 {
		t.Fatal("degree accounting wrong")
	}
}

func TestSourcesSinks(t *testing.T) {
	g := diamond(t)
	if s := g.Sources(); len(s) != 1 || s[0] != 0 {
		t.Fatalf("Sources = %v", s)
	}
	if s := g.Sinks(); len(s) != 1 || s[0] != 3 {
		t.Fatalf("Sinks = %v", s)
	}
}

func TestTopoOrder(t *testing.T) {
	g := diamond(t)
	order, err := g.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	pos := make([]int, 4)
	for i, u := range order {
		pos[u] = i
	}
	g.Edges(func(u, v int) {
		if pos[u] >= pos[v] {
			t.Fatalf("edge %d→%d violates topo order %v", u, v, order)
		}
	})
	// Determinism: smallest-first tie-break gives 0,1,2,3 for the diamond.
	want := []int{0, 1, 2, 3}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestTopoOrderCycle(t *testing.T) {
	g := New(3)
	g.MustAddEdge(0, 1)
	g.MustAddEdge(1, 2)
	g.MustAddEdge(2, 0)
	if _, err := g.TopoOrder(); err != ErrCycle {
		t.Fatalf("err = %v, want ErrCycle", err)
	}
	if g.IsAcyclic() {
		t.Fatal("IsAcyclic = true on a cycle")
	}
}

func TestSCC(t *testing.T) {
	// 0→1→2→0 is one SCC; 3 alone; 2→3.
	g := New(4)
	g.MustAddEdge(0, 1)
	g.MustAddEdge(1, 2)
	g.MustAddEdge(2, 0)
	g.MustAddEdge(2, 3)
	comps := g.SCC()
	if len(comps) != 2 {
		t.Fatalf("SCC = %v", comps)
	}
	if len(comps[0]) != 3 || comps[0][0] != 0 || comps[0][1] != 1 || comps[0][2] != 2 {
		t.Fatalf("first comp = %v", comps[0])
	}
	if len(comps[1]) != 1 || comps[1][0] != 3 {
		t.Fatalf("second comp = %v", comps[1])
	}
}

func TestSCCAllTrivialOnDAG(t *testing.T) {
	g := diamond(t)
	comps := g.SCC()
	if len(comps) != 4 {
		t.Fatalf("SCC on DAG = %v", comps)
	}
	for i, c := range comps {
		if len(c) != 1 || c[0] != i {
			t.Fatalf("comps = %v", comps)
		}
	}
}

func TestReachabilityDiamond(t *testing.T) {
	g := diamond(t)
	cl := g.Reachability()
	for u := 0; u < 4; u++ {
		if !cl.Reaches(u, u) {
			t.Fatalf("reflexive reach missing at %d", u)
		}
	}
	if !cl.Reaches(0, 3) || !cl.Reaches(1, 3) || cl.Reaches(1, 2) || cl.Reaches(3, 0) {
		t.Fatal("closure wrong")
	}
	// 0 reaches all 4, 1 and 2 reach two, 3 reaches itself: pairs = 3+1+1+0.
	if got := cl.Pairs(); got != 5 {
		t.Fatalf("Pairs = %d, want 5", got)
	}
}

func TestReachabilityCyclicFallback(t *testing.T) {
	g := New(4)
	g.MustAddEdge(0, 1)
	g.MustAddEdge(1, 0)
	g.MustAddEdge(1, 2)
	cl := g.Reachability()
	if !cl.Reaches(0, 2) || !cl.Reaches(1, 0) || cl.Reaches(3, 0) {
		t.Fatal("cyclic closure wrong")
	}
}

func TestQuotient(t *testing.T) {
	g := diamond(t)
	// Blocks: {0}, {1,2}, {3}.
	q, err := g.Quotient([]int{0, 1, 1, 2}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if q.N() != 3 || q.M() != 2 {
		t.Fatalf("quotient N=%d M=%d", q.N(), q.M())
	}
	if !q.HasEdge(0, 1) || !q.HasEdge(1, 2) || q.HasEdge(0, 2) {
		t.Fatal("quotient edges wrong")
	}
}

func TestQuotientCanBeCyclic(t *testing.T) {
	// 0→1, 2→3 with blocks {0,3} and {1,2} quotients to A→B and B→A.
	g := New(4)
	g.MustAddEdge(0, 1)
	g.MustAddEdge(2, 3)
	q, err := g.Quotient([]int{0, 1, 1, 0}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if q.IsAcyclic() {
		t.Fatal("expected cyclic quotient")
	}
}

func TestQuotientValidation(t *testing.T) {
	g := diamond(t)
	if _, err := g.Quotient([]int{0, 0, 0}, 1); err == nil {
		t.Fatal("short partition must error")
	}
	if _, err := g.Quotient([]int{0, 5, 0, 0}, 2); err == nil {
		t.Fatal("invalid block id must error")
	}
}

func TestTransitiveReduction(t *testing.T) {
	g := New(3)
	g.MustAddEdge(0, 1)
	g.MustAddEdge(1, 2)
	g.MustAddEdge(0, 2) // redundant
	r, err := g.TransitiveReduction()
	if err != nil {
		t.Fatal(err)
	}
	if r.HasEdge(0, 2) || !r.HasEdge(0, 1) || !r.HasEdge(1, 2) {
		t.Fatal("reduction wrong")
	}
	if r.M() != 2 {
		t.Fatalf("M = %d", r.M())
	}

	c := New(2)
	c.MustAddEdge(0, 1)
	c.MustAddEdge(1, 0)
	if _, err := c.TransitiveReduction(); err != ErrCycle {
		t.Fatalf("err = %v, want ErrCycle", err)
	}
}

func TestClone(t *testing.T) {
	g := diamond(t)
	c := g.Clone()
	c.MustAddEdge(1, 2)
	if g.HasEdge(1, 2) {
		t.Fatal("clone mutation leaked into original")
	}
	if c.M() != g.M()+1 {
		t.Fatal("edge counts diverged wrongly")
	}
}

// randomDAG builds a random DAG by only adding forward edges in a random
// permutation, so it is acyclic by construction.
func randomDAG(rng *rand.Rand, n int, p float64) *Graph {
	g := New(n)
	perm := rng.Perm(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Float64() < p {
				g.MustAddEdge(perm[i], perm[j])
			}
		}
	}
	return g
}

// Property: DP closure equals BFS closure on random DAGs.
func TestQuickClosureAgreement(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomDAG(rng, 2+rng.Intn(40), rng.Float64()*0.3)
		a := g.Reachability()
		b := g.ReachabilityBFS()
		for u := 0; u < g.N(); u++ {
			if !a.Row(u).Equal(b.Row(u)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// Property: closure is transitive and contains the edge relation.
func TestQuickClosureLaws(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomDAG(rng, 2+rng.Intn(30), rng.Float64()*0.25)
		cl := g.Reachability()
		ok := true
		g.Edges(func(u, v int) {
			if !cl.Reaches(u, v) {
				ok = false
			}
		})
		if !ok {
			return false
		}
		n := g.N()
		for u := 0; u < n; u++ {
			for v := 0; v < n; v++ {
				if !cl.Reaches(u, v) {
					continue
				}
				// Everything v reaches, u reaches.
				if !cl.Row(u).ContainsAll(cl.Row(v)) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: topo order positions respect all edges on random DAGs.
func TestQuickTopoOrder(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomDAG(rng, 1+rng.Intn(60), rng.Float64()*0.2)
		order, err := g.TopoOrder()
		if err != nil {
			return false
		}
		pos := make([]int, g.N())
		for i, u := range order {
			pos[u] = i
		}
		ok := true
		g.Edges(func(u, v int) {
			if pos[u] >= pos[v] {
				ok = false
			}
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// Property: transitive reduction preserves the closure and is minimal in
// the sense that it removes all redundant direct edges.
func TestQuickTransitiveReduction(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomDAG(rng, 2+rng.Intn(25), rng.Float64()*0.3)
		r, err := g.TransitiveReduction()
		if err != nil {
			return false
		}
		a, b := g.Reachability(), r.Reachability()
		for u := 0; u < g.N(); u++ {
			if !a.Row(u).Equal(b.Row(u)) {
				return false
			}
		}
		ok := true
		r.Edges(func(u, v int) {
			// No remaining edge may be implied by a 2+ hop path.
			for _, w := range r.Succs(u) {
				if int(w) != v && b.Reaches(int(w), v) {
					ok = false
				}
			}
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkReachabilityDP(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	g := randomDAG(rng, 512, 0.02)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Reachability()
	}
}

func BenchmarkReachabilityBFS(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	g := randomDAG(rng, 512, 0.02)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.ReachabilityBFS()
	}
}
