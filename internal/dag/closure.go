package dag

import (
	"runtime"
	"sync"

	"wolves/internal/bitset"
)

// Closure is a reachability matrix: one bit row per node holding the
// reflexive-transitive successors of that node. Rows live in a single
// flat bitset.Matrix (one allocation, cache-friendly row adjacency);
// Row exposes each row as a zero-copy view for the Set-based callers.
type Closure struct {
	m     *bitset.Matrix
	views []bitset.Set // row view headers, built once at construction
}

func newClosure(n int) *Closure {
	c := &Closure{m: bitset.NewMatrix(n, n), views: make([]bitset.Set, n)}
	for u := 0; u < n; u++ {
		c.views[u] = c.m.RowView(u)
	}
	return c
}

// parallelThreshold is the node count below which closure construction
// stays single-threaded: goroutine fan-out costs more than it saves on
// the small workflows that dominate interactive use.
const parallelThreshold = 512

// closureWorkers returns the worker count for closure construction.
func closureWorkers(n int) int {
	w := runtime.GOMAXPROCS(0)
	if n < parallelThreshold || w < 2 {
		return 1
	}
	if w > n {
		w = n
	}
	return w
}

// Reachability computes the reflexive-transitive closure of g. Acyclic
// graphs use a reverse-topological dynamic program (each row is the
// union of successor rows), parallelized level-by-level across
// runtime.GOMAXPROCS workers on large graphs; cyclic graphs fall back to
// per-source BFS sharded across the same worker pool, so view quotient
// graphs with cycles are still handled.
func (g *Graph) Reachability() *Closure {
	if order, ok := g.topoAnyOrder(); ok {
		return g.reachabilityDP(order)
	}
	return g.ReachabilityBFS()
}

// Matrix returns the flat reachability matrix backing the closure.
func (c *Closure) Matrix() *bitset.Matrix { return c.m }

// Clone returns an independent deep copy of the closure. Snapshots of a
// live (incrementally maintained) closure hand out clones so later
// mutations never reach published state.
func (c *Closure) Clone() *Closure {
	n := len(c.views)
	cp := &Closure{m: c.m.Clone(), views: make([]bitset.Set, n)}
	for u := 0; u < n; u++ {
		cp.views[u] = cp.m.RowView(u)
	}
	return cp
}

func (g *Graph) reachabilityDP(order []int) *Closure {
	c := newClosure(g.n)
	workers := closureWorkers(g.n)
	if workers == 1 {
		for i := len(order) - 1; i >= 0; i-- {
			u := order[i]
			c.m.CloseRow(u, g.succs[u])
		}
		return c
	}

	// Level-parallel DP: level(u) = longest path from u to a sink. Rows
	// at the same level never depend on each other, so each level is a
	// parallel stage once all deeper levels are complete.
	level := make([]int32, g.n)
	maxLevel := int32(0)
	for i := len(order) - 1; i >= 0; i-- {
		u := order[i]
		lv := int32(0)
		for _, v := range g.succs[u] {
			if l := level[v] + 1; l > lv {
				lv = l
			}
		}
		level[u] = lv
		if lv > maxLevel {
			maxLevel = lv
		}
	}
	buckets := make([][]int32, maxLevel+1)
	for u := 0; u < g.n; u++ {
		buckets[level[u]] = append(buckets[level[u]], int32(u))
	}
	var wg sync.WaitGroup
	for lv := int32(0); lv <= maxLevel; lv++ {
		nodes := buckets[lv]
		chunk := (len(nodes) + workers - 1) / workers
		if chunk == 0 {
			continue
		}
		for lo := 0; lo < len(nodes); lo += chunk {
			hi := lo + chunk
			if hi > len(nodes) {
				hi = len(nodes)
			}
			wg.Add(1)
			go func(part []int32) {
				defer wg.Done()
				for _, u32 := range part {
					u := int(u32)
					c.m.CloseRow(u, g.succs[u])
				}
			}(nodes[lo:hi])
		}
		wg.Wait()
	}
	return c
}

// ReachabilityBFS computes the closure with one graph search per source
// node, sharded across the worker pool (each worker owns a disjoint row
// range, so no synchronization is needed beyond the final join). Exposed
// for the A3 ablation benchmark; Reachability chooses automatically.
func (g *Graph) ReachabilityBFS() *Closure {
	c := newClosure(g.n)
	workers := closureWorkers(g.n)
	if workers == 1 {
		g.bfsRange(c, 0, g.n, make([]int, 0, g.n))
		return c
	}
	var wg sync.WaitGroup
	chunk := (g.n + workers - 1) / workers
	for lo := 0; lo < g.n; lo += chunk {
		hi := lo + chunk
		if hi > g.n {
			hi = g.n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			g.bfsRange(c, lo, hi, make([]int, 0, g.n))
		}(lo, hi)
	}
	wg.Wait()
	return c
}

// bfsRange fills closure rows [lo, hi) by graph search from each source.
func (g *Graph) bfsRange(c *Closure, lo, hi int, queue []int) {
	for s := lo; s < hi; s++ {
		row := &c.views[s]
		row.Set(s)
		queue = append(queue[:0], s)
		for len(queue) > 0 {
			u := queue[len(queue)-1]
			queue = queue[:len(queue)-1]
			for _, v := range g.succs[u] {
				if !row.Test(int(v)) {
					row.Set(int(v))
					queue = append(queue, int(v))
				}
			}
		}
	}
}

// Reaches reports whether u reaches v (reflexively: Reaches(u,u) = true).
func (c *Closure) Reaches(u, v int) bool { return c.m.TestBit(u, v) }

// Row returns the reachability row of u as a view over the flat matrix.
// Shared storage; do not mutate.
func (c *Closure) Row(u int) *bitset.Set { return &c.views[u] }

// N returns the number of nodes covered by the closure.
func (c *Closure) N() int { return len(c.views) }

// Pairs returns the number of ordered reachable pairs, excluding the
// reflexive ones. This is the "size" of the provenance relation.
func (c *Closure) Pairs() int {
	total := 0
	for u := range c.views {
		total += c.views[u].Count() - 1
	}
	return total
}
