package dag

import (
	"fmt"

	"wolves/internal/bitset"
)

// IncrementalClosure maintains the reflexive-transitive closure of a
// growing DAG under edge and node additions, without ever rebuilding it
// from scratch on the success path. It is the substrate of the engine's
// live workflow registry: a stateless pipeline pays O(V·E/w) closure
// construction per request, while an IncrementalClosure pays only for
// the pairs that actually become reachable.
//
// Edge insertion uses Italiano-style row OR-propagation: inserting u→v
// unions v's descendant row into the row of every ancestor w of u that
// does not already reach v. The ancestor set is read from a transposed
// closure maintained in the same pass, so provenance "ancestors of t"
// queries are answered by a row lookup with no lazy transpose build.
// The update cost is O(|anc(u)| · V/64) word operations plus one
// transposed-bit write per newly reachable pair — for a single edge on a
// large workflow this is orders of magnitude below a rebuild.
//
// The IncrementalClosure owns its graph: after construction, callers
// must route every mutation through AddEdge/Grow (mutating the graph
// directly would silently desynchronize the closure). The structure is
// not safe for concurrent use; the registry serializes mutations behind
// a write lock and lets readers share the closure rows behind a read
// lock.
type IncrementalClosure struct {
	g   *Graph
	fwd *Closure // Row(u) = reflexive descendants of u
	rev *Closure // Row(v) = reflexive ancestors of v (transpose of fwd)

	// labels/revLabels are the interval reachability label indexes
	// maintained alongside the closures: labels answers "u reaches v",
	// revLabels is built over the reversed graph so its rows enumerate
	// ancestors. Edge insertion patches both in the same Italiano pass
	// that ORs closure rows; past the patch budget they are dropped and
	// lazily rebuilt on the next Labels() call, bounding fragmentation
	// from long patch sequences. Both nil while stale or when the graph
	// exceeded the label interval budget (callers fall back to closure
	// rows) — they are always present or absent together.
	labels        *Labels
	revLabels     *Labels
	labelsStale   bool
	labelBuilds   int64 // label-index (pair) builds: initial + rebuilds
	labelRebuilds int64 // rebuilds triggered by the patch budget
	labelPatches  int64 // lifetime Patch calls, both directions
}

// NewIncrementalClosure computes the initial closure of g (which must be
// acyclic) and its transpose, and takes ownership of g.
func NewIncrementalClosure(g *Graph) (*IncrementalClosure, error) {
	if !g.IsAcyclic() {
		return nil, ErrCycle
	}
	ic := &IncrementalClosure{g: g}
	ic.rebuild()
	return ic, nil
}

// rebuild recomputes both closures from the graph (construction and
// the rare rollback path). The label pair is marked stale rather than
// built: the first Labels()/RevLabels() read builds it, so a workflow
// that is registered and mutated before anyone queries it — the replay
// profile, where epoch publication is deferred wholesale — never pays
// for label builds it immediately invalidates.
func (ic *IncrementalClosure) rebuild() {
	ic.fwd = ic.g.Reachability()
	ic.rev = transpose(ic.fwd)
	ic.labels, ic.revLabels = nil, nil
	ic.labelsStale = true
}

// rebuildLabels builds the forward/reverse label pair; if either blows
// the interval budget both are dropped, keeping the pair invariant.
func (ic *IncrementalClosure) rebuildLabels() {
	ic.labels = BuildLabels(ic.g)
	if ic.labels != nil {
		ic.revLabels = BuildLabels(ic.g.Reversed())
		if ic.revLabels == nil {
			ic.labels = nil
		}
	} else {
		ic.revLabels = nil
	}
	ic.labelsStale = false
	ic.labelBuilds++
}

// dropLabels discards the label pair past the patch budget, marking it
// stale so the next Labels()/RevLabels() call rebuilds fresh.
func (ic *IncrementalClosure) dropLabels() {
	ic.labels, ic.revLabels = nil, nil
	ic.labelsStale = true
	ic.labelRebuilds++
}

// labelPatchBudget is the number of label patches tolerated (per
// direction) before the pair is dropped and rebuilt: each patch can
// fragment a row, and past roughly half the node count a fresh O(n+m)
// build is cheaper than the accumulated fragmentation it clears.
func (ic *IncrementalClosure) labelPatchBudget() int64 {
	if b := int64(ic.g.n) / 2; b > 256 {
		return b
	}
	return 256
}

// Labels returns the current forward label index, rebuilding the pair
// first when a patch-budget overrun marked it stale. It returns nil
// when the graph blew the interval budget — closure rows remain
// authoritative either way. The returned index is mutated by
// AddEdge/Grow; concurrent readers must hold a Fork instead.
func (ic *IncrementalClosure) Labels() *Labels {
	if ic.labelsStale {
		ic.rebuildLabels()
	}
	return ic.labels
}

// RevLabels returns the reverse (ancestor-direction) label index, nil
// exactly when Labels is nil. Same rebuild and sharing rules.
func (ic *IncrementalClosure) RevLabels() *Labels {
	if ic.labelsStale {
		ic.rebuildLabels()
	}
	return ic.revLabels
}

// LabelBuilds returns the number of full label-index builds.
func (ic *IncrementalClosure) LabelBuilds() int64 { return ic.labelBuilds }

// LabelRebuilds returns the number of rebuilds forced by the patch
// budget.
func (ic *IncrementalClosure) LabelRebuilds() int64 { return ic.labelRebuilds }

// LabelPatches returns the lifetime count of incremental label patches.
func (ic *IncrementalClosure) LabelPatches() int64 { return ic.labelPatches }

// transpose builds the reversed closure: t.Row(v) holds every u with
// u→…→v (reflexively).
func transpose(c *Closure) *Closure {
	n := c.N()
	t := newClosure(n)
	for u := 0; u < n; u++ {
		row := c.Row(u)
		row.ForEach(func(v int) bool {
			t.m.SetBit(v, u)
			return true
		})
	}
	return t
}

// Graph returns the underlying graph. Shared; mutate only through the
// IncrementalClosure.
func (ic *IncrementalClosure) Graph() *Graph { return ic.g }

// Fwd returns the forward closure (descendant rows). The returned
// Closure is updated in place by AddEdge and replaced by Grow/Rollback.
func (ic *IncrementalClosure) Fwd() *Closure { return ic.fwd }

// Rev returns the transposed closure (ancestor rows), maintained in the
// same pass as Fwd. Same sharing rules as Fwd.
func (ic *IncrementalClosure) Rev() *Closure { return ic.rev }

// N returns the current node count.
func (ic *IncrementalClosure) N() int { return ic.g.N() }

// AddEdge inserts u→v into the graph and updates both closures. It
// reports whether a new edge was inserted (duplicates are ignored, as in
// Graph.AddEdge) and fails — leaving every structure untouched — when
// the edge is a self-loop or would create a cycle (v already reaches u;
// the check is a single closure-bit test). When dirty is non-nil, the
// indices of every node whose forward-reachability row changed, plus u
// and v themselves (whose adjacency changed), are set in it; the
// registry derives dirty composites from exactly this set.
func (ic *IncrementalClosure) AddEdge(u, v int, dirty *bitset.Set) (bool, error) {
	ic.g.checkNode(u)
	ic.g.checkNode(v)
	if u == v {
		return false, fmt.Errorf("dag: self-loop on node %d", u)
	}
	if ic.fwd.Reaches(v, u) {
		return false, fmt.Errorf("%w: edge %d→%d closes a path back from %d to %d", ErrCycle, u, v, v, u)
	}
	if ic.g.hasEdgeFast(u, v) {
		return false, nil
	}
	ic.g.addEdgeUnchecked(u, v)
	if dirty != nil {
		dirty.Set(u)
		dirty.Set(v)
	}
	if ic.fwd.Reaches(u, v) {
		// The path u→…→v already existed; the closure is unchanged.
		return true, nil
	}
	patchBudget := ic.labelPatchBudget()
	// Reverse-label patches run first, while the forward rows are still
	// pre-insertion: every descendant x of v that u did not already
	// reach gains u's reflexive ancestor cover (anc'(x) = anc(x) ∪
	// anc(u); u already reaching x implies anc(u) ⊆ anc(x), so the skip
	// is exact). rows_rev[u] is never the patched row — u ∈ desc(v)
	// would be the cycle rejected above — so the merge source is stable.
	if rl := ic.revLabels; rl != nil {
		ic.fwd.Row(v).ForEach(func(x int) bool {
			if ic.fwd.Reaches(u, x) {
				return true
			}
			rl.Patch(x, u)
			ic.labelPatches++
			if rl.patches >= patchBudget {
				ic.dropLabels()
				return false
			}
			return true
		})
	}
	// Italiano propagation: every ancestor w of u (including u) that does
	// not yet reach v gains v's entire descendant row. The newly set bits
	// of each row are mirrored into the transposed closure before the OR,
	// so Rev stays the exact transpose of Fwd throughout. No row read in
	// this loop is ever a row written: a written row belongs to an
	// ancestor of u, and neither fwd[v] nor rev[u] can be such a row
	// without closing the cycle rejected above.
	srcRow := ic.fwd.Row(v)
	ic.rev.Row(u).ForEach(func(w int) bool {
		if ic.fwd.Reaches(w, v) {
			return true
		}
		dstRow := ic.fwd.Row(w)
		srcRow.ForEachNotIn(dstRow, func(x int) bool {
			ic.rev.m.SetBit(x, w)
			return true
		})
		dstRow.Or(srcRow)
		// Patch the label index in the same pass: w's reach set became
		// reach(w) ∪ reach(v), so merging v's interval cover into w's
		// keeps the exact-cover invariant (v is never an ancestor of u
		// here, so rows[v] is stable throughout the loop).
		if lbl := ic.labels; lbl != nil {
			lbl.Patch(w, v)
			ic.labelPatches++
			if lbl.patches >= patchBudget {
				ic.dropLabels()
			}
		}
		if dirty != nil {
			dirty.Set(w)
		}
		return true
	})
	return true, nil
}

// Grow appends k isolated nodes to the graph and widens both closure
// matrices, preserving every existing reachability bit. New nodes start
// with only their reflexive bit — exactly what a from-scratch closure of
// the grown graph holds. Grow replaces the Closure objects returned by
// Fwd/Rev (the matrices change dimension); holders of the old ones must
// re-fetch.
func (ic *IncrementalClosure) Grow(k int) int {
	first := ic.g.AddNodes(k)
	if k == 0 {
		return first
	}
	n := ic.g.N()
	ic.fwd = growClosure(ic.fwd, n)
	ic.rev = growClosure(ic.rev, n)
	if ic.labels != nil {
		ic.labels.Grow(k)
		ic.revLabels.Grow(k)
	}
	return first
}

// growClosure widens c to n nodes, seeding the reflexive bit of each new
// node.
func growClosure(c *Closure, n int) *Closure {
	nc := newClosure(n)
	nc.m.Embed(c.m)
	for u := c.N(); u < n; u++ {
		nc.m.SetBit(u, u)
	}
	return nc
}

// Rollback unwinds a partially applied mutation batch: edges (as (u,v)
// index pairs) are popped in reverse insertion order, the node count
// shrinks back to n, and both closures are rebuilt from scratch. This is
// the error path of a rejected batch — the full rebuild cost is paid
// only when a mutation fails mid-way, never on success.
func (ic *IncrementalClosure) Rollback(n int, edges [][2]int) {
	for i := len(edges) - 1; i >= 0; i-- {
		ic.g.PopEdge(edges[i][0], edges[i][1])
	}
	ic.g.TruncateNodes(n)
	ic.rebuild()
}
