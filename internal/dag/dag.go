// Package dag implements the directed-graph substrate used by WOLVES:
// workflow specifications, view (quotient) graphs and provenance graphs
// are all instances of Graph. It provides topological ordering, cycle
// diagnosis via strongly connected components, reachability closures
// (the engine behind every soundness check), quotient construction and
// transitive reduction.
//
// Nodes are dense integers [0, N). Callers that need identifiers keep
// their own mapping (see internal/workflow).
package dag

import (
	"errors"
	"fmt"
	"slices"

	"wolves/internal/bitset"
)

// Graph is a directed graph over nodes 0..n-1 with forward and reverse
// adjacency. Parallel edges are collapsed; self-loops are rejected.
//
// Successor lists keep insertion order (Edges and Succs are part of the
// deterministic output surface); a sorted mirror of each successor list
// is maintained alongside so HasEdge — and therefore bulk AddEdge
// deduplication — runs in O(log d) instead of a linear scan.
type Graph struct {
	n      int
	m      int
	succs  [][]int32
	preds  [][]int32
	sorted [][]int32 // per-node successors, ascending (dedup index)
}

// ErrCycle is returned by TopoOrder when the graph is not acyclic.
var ErrCycle = errors.New("dag: graph contains a cycle")

// New returns an empty graph with n nodes.
func New(n int) *Graph {
	if n < 0 {
		panic("dag: negative node count")
	}
	return &Graph{
		n:      n,
		succs:  make([][]int32, n),
		preds:  make([][]int32, n),
		sorted: make([][]int32, n),
	}
}

// N returns the number of nodes.
func (g *Graph) N() int { return g.n }

// M returns the number of (distinct) edges.
func (g *Graph) M() int { return g.m }

func (g *Graph) checkNode(u int) {
	if u < 0 || u >= g.n {
		panic(fmt.Sprintf("dag: node %d out of range [0,%d)", u, g.n))
	}
}

// mirrorMinDeg is the out-degree at which a node switches from linear
// duplicate scans to the sorted successor mirror: below it a handful of
// int32 compares beats the insert memmove and the extra allocation.
const mirrorMinDeg = 16

// AddEdge inserts the edge u→v. Self-loops are an error; duplicate edges
// are ignored. It returns true when a new edge was inserted.
func (g *Graph) AddEdge(u, v int) (bool, error) {
	g.checkNode(u)
	g.checkNode(v)
	if u == v {
		return false, fmt.Errorf("dag: self-loop on node %d", u)
	}
	if g.hasEdgeFast(u, v) {
		return false, nil
	}
	g.addEdgeUnchecked(u, v)
	return true, nil
}

// hasEdgeFast is the dedup membership test behind AddEdge/HasEdge:
// binary search when the sorted mirror exists, linear scan otherwise.
func (g *Graph) hasEdgeFast(u, v int) bool {
	if s := g.sorted[u]; s != nil {
		_, ok := slices.BinarySearch(s, int32(v))
		return ok
	}
	for _, w := range g.succs[u] {
		if int(w) == v {
			return true
		}
	}
	return false
}

// addEdgeUnchecked appends a pre-deduplicated, pre-validated edge,
// building or maintaining the sorted mirror past the degree threshold.
func (g *Graph) addEdgeUnchecked(u, v int) {
	g.succs[u] = append(g.succs[u], int32(v))
	g.preds[v] = append(g.preds[v], int32(u))
	g.m++
	switch s := g.sorted[u]; {
	case s != nil:
		pos, _ := slices.BinarySearch(s, int32(v))
		g.sorted[u] = slices.Insert(s, pos, int32(v))
	case len(g.succs[u]) >= mirrorMinDeg:
		mirror := append(make([]int32, 0, 2*len(g.succs[u])), g.succs[u]...)
		slices.Sort(mirror)
		g.sorted[u] = mirror
	}
}

// AddNodes appends k isolated nodes and returns the index of the first
// new node. It is the node-growth half of live workflow mutation; the
// IncrementalClosure grows its matrices in step via Grow.
func (g *Graph) AddNodes(k int) int {
	if k < 0 {
		panic("dag: negative node count")
	}
	first := g.n
	g.n += k
	g.succs = append(g.succs, make([][]int32, k)...)
	g.preds = append(g.preds, make([][]int32, k)...)
	g.sorted = append(g.sorted, make([][]int32, k)...)
	return first
}

// PopEdge removes the edge u→v, which must be the most recently inserted
// entry of both u's successor list and v's predecessor list. Unwinding a
// sequence of AddEdge calls in reverse (LIFO) order always satisfies
// this; it exists only for the registry's mutation rollback.
func (g *Graph) PopEdge(u, v int) {
	g.checkNode(u)
	g.checkNode(v)
	su, pv := g.succs[u], g.preds[v]
	if len(su) == 0 || int(su[len(su)-1]) != v || len(pv) == 0 || int(pv[len(pv)-1]) != u {
		panic(fmt.Sprintf("dag: PopEdge(%d,%d): not the most recent edge", u, v))
	}
	g.succs[u] = su[:len(su)-1]
	g.preds[v] = pv[:len(pv)-1]
	g.m--
	if s := g.sorted[u]; s != nil {
		pos, ok := slices.BinarySearch(s, int32(v))
		if !ok {
			panic(fmt.Sprintf("dag: PopEdge(%d,%d): sorted mirror out of sync", u, v))
		}
		g.sorted[u] = slices.Delete(s, pos, pos+1)
	}
}

// TruncateNodes shrinks the graph back to n nodes. Every node being
// removed must be isolated (callers pop its edges first); this is the
// rollback counterpart of AddNodes.
func (g *Graph) TruncateNodes(n int) {
	if n < 0 || n > g.n {
		panic(fmt.Sprintf("dag: cannot truncate %d-node graph to %d", g.n, n))
	}
	for u := n; u < g.n; u++ {
		if len(g.succs[u])+len(g.preds[u]) > 0 {
			panic(fmt.Sprintf("dag: TruncateNodes: node %d still has edges", u))
		}
	}
	g.succs = g.succs[:n]
	g.preds = g.preds[:n]
	g.sorted = g.sorted[:n]
	g.n = n
}

// MustAddEdge is AddEdge for construction code with validated inputs.
func (g *Graph) MustAddEdge(u, v int) {
	if _, err := g.AddEdge(u, v); err != nil {
		panic(err)
	}
}

// HasEdge reports whether u→v exists.
func (g *Graph) HasEdge(u, v int) bool {
	g.checkNode(u)
	g.checkNode(v)
	return g.hasEdgeFast(u, v)
}

// Succs returns the successors of u. The slice is shared; do not mutate.
func (g *Graph) Succs(u int) []int32 {
	g.checkNode(u)
	return g.succs[u]
}

// Preds returns the predecessors of u. The slice is shared; do not mutate.
func (g *Graph) Preds(u int) []int32 {
	g.checkNode(u)
	return g.preds[u]
}

// OutDeg returns the out-degree of u.
func (g *Graph) OutDeg(u int) int { return len(g.Succs(u)) }

// InDeg returns the in-degree of u.
func (g *Graph) InDeg(u int) int { return len(g.Preds(u)) }

// Sources returns all nodes with in-degree zero, ascending.
func (g *Graph) Sources() []int {
	var out []int
	for u := 0; u < g.n; u++ {
		if len(g.preds[u]) == 0 {
			out = append(out, u)
		}
	}
	return out
}

// Sinks returns all nodes with out-degree zero, ascending.
func (g *Graph) Sinks() []int {
	var out []int
	for u := 0; u < g.n; u++ {
		if len(g.succs[u]) == 0 {
			out = append(out, u)
		}
	}
	return out
}

// Edges calls fn for every edge (u,v), ordered by u then insertion.
func (g *Graph) Edges(fn func(u, v int)) {
	for u := 0; u < g.n; u++ {
		for _, v := range g.succs[u] {
			fn(u, int(v))
		}
	}
}

// Reversed returns a new graph with every edge flipped — the input for
// reverse (ancestor-direction) label indexes.
func (g *Graph) Reversed() *Graph {
	r := New(g.n)
	for v := 0; v < g.n; v++ {
		for _, u := range g.preds[v] {
			r.addEdgeUnchecked(v, int(u))
		}
	}
	return r
}

// Clone returns a deep copy of g.
func (g *Graph) Clone() *Graph {
	c := New(g.n)
	c.m = g.m
	for u := 0; u < g.n; u++ {
		c.succs[u] = append([]int32(nil), g.succs[u]...)
		c.preds[u] = append([]int32(nil), g.preds[u]...)
		c.sorted[u] = append([]int32(nil), g.sorted[u]...)
	}
	return c
}

// TopoOrder returns a topological order (Kahn's algorithm, smallest node
// first for determinism) or ErrCycle. The ready set is a bitset with a
// monotone cursor: popping the minimum is a word-skipping first-set-bit
// scan instead of the seed's O(n) min-scan per pop (or a heap's pointer
// chasing), so the whole sort is close to O(n + m) on real graphs.
func (g *Graph) TopoOrder() ([]int, error) {
	indeg := make([]int, g.n)
	ready := bitset.New(g.n)
	for u := 0; u < g.n; u++ {
		indeg[u] = len(g.preds[u])
		if indeg[u] == 0 {
			ready.Set(u)
		}
	}
	order := make([]int, 0, g.n)
	// Invariant: no ready bit lies below cursor.
	cursor := 0
	for {
		u := ready.NextSet(cursor)
		if u == -1 {
			break
		}
		ready.Clear(u)
		cursor = u
		order = append(order, u)
		for _, v32 := range g.succs[u] {
			v := int(v32)
			indeg[v]--
			if indeg[v] == 0 {
				ready.Set(v)
				if v < cursor {
					cursor = v
				}
			}
		}
	}
	if len(order) != g.n {
		return nil, ErrCycle
	}
	return order, nil
}

// topoAnyOrder returns some topological order using a FIFO Kahn queue
// (O(n+m), no heap). The closure DP only needs a valid order — the
// closure itself is unique — so the deterministic-smallest-first
// guarantee of TopoOrder is not paid for on that hot path.
func (g *Graph) topoAnyOrder() ([]int, bool) {
	indeg := make([]int, g.n)
	for u := 0; u < g.n; u++ {
		indeg[u] = len(g.preds[u])
	}
	queue := make([]int, 0, g.n)
	for u := 0; u < g.n; u++ {
		if indeg[u] == 0 {
			queue = append(queue, u)
		}
	}
	for head := 0; head < len(queue); head++ {
		u := queue[head]
		for _, v := range g.succs[u] {
			indeg[v]--
			if indeg[v] == 0 {
				queue = append(queue, int(v))
			}
		}
	}
	return queue, len(queue) == g.n
}

// IsAcyclic reports whether g has no directed cycle.
func (g *Graph) IsAcyclic() bool {
	_, ok := g.topoAnyOrder()
	return ok
}

// SCC returns the strongly connected components of g (Tarjan, iterative),
// each sorted ascending, components ordered by smallest member. Trivial
// single-node components are included.
func (g *Graph) SCC() [][]int {
	const unvisited = -1
	index := make([]int, g.n)
	low := make([]int, g.n)
	onStack := make([]bool, g.n)
	for i := range index {
		index[i] = unvisited
	}
	var (
		stack  []int
		comps  [][]int
		idx    int
		frames []frame
	)
	for root := 0; root < g.n; root++ {
		if index[root] != unvisited {
			continue
		}
		frames = append(frames[:0], frame{u: root})
		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			u := f.u
			if f.i == 0 {
				index[u] = idx
				low[u] = idx
				idx++
				stack = append(stack, u)
				onStack[u] = true
			}
			advanced := false
			for f.i < len(g.succs[u]) {
				v := int(g.succs[u][f.i])
				f.i++
				if index[v] == unvisited {
					frames = append(frames, frame{u: v})
					advanced = true
					break
				}
				if onStack[v] && index[v] < low[u] {
					low[u] = index[v]
				}
			}
			if advanced {
				continue
			}
			if low[u] == index[u] {
				var comp []int
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp = append(comp, w)
					if w == u {
						break
					}
				}
				slices.Sort(comp)
				comps = append(comps, comp)
			}
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				p := frames[len(frames)-1].u
				if low[u] < low[p] {
					low[p] = low[u]
				}
			}
		}
	}
	// Order components by smallest member for determinism.
	slices.SortFunc(comps, func(a, b []int) int { return a[0] - b[0] })
	return comps
}

type frame struct {
	u, i int
}

// maxDenseQuotientBits caps the k×k dedup bitset of Quotient at 8 MiB;
// larger quotients fall back to the map so memory stays proportional to
// the edge count.
const maxDenseQuotientBits = 1 << 26

// Quotient builds the quotient graph induced by the partition partOf,
// where partOf[u] ∈ [0,k) names u's block. Inter-block multi-edges are
// collapsed; intra-block edges are dropped. The quotient of a DAG may be
// cyclic; callers diagnose that with SCC or TopoOrder.
func (g *Graph) Quotient(partOf []int, k int) (*Graph, error) {
	if len(partOf) != g.n {
		return nil, fmt.Errorf("dag: partition has %d entries, graph has %d nodes", len(partOf), g.n)
	}
	q := New(k)
	// Dedup inter-block edges with a flat k×k bitset (one allocation,
	// O(1) membership) instead of a map keyed by bu*k+bv.
	var seenBits *bitset.Set
	var seenMap map[int64]bool
	if k > 0 && k <= maxDenseQuotientBits/k {
		seenBits = bitset.New(k * k)
	} else {
		seenMap = make(map[int64]bool, g.m)
	}
	for u := 0; u < g.n; u++ {
		bu := partOf[u]
		if bu < 0 || bu >= k {
			return nil, fmt.Errorf("dag: node %d assigned to invalid block %d", u, bu)
		}
		for _, v32 := range g.succs[u] {
			bv := partOf[v32]
			if bv < 0 || bv >= k {
				return nil, fmt.Errorf("dag: node %d assigned to invalid block %d", v32, bv)
			}
			if bu == bv {
				continue
			}
			if seenBits != nil {
				key := bu*k + bv
				if seenBits.Test(key) {
					continue
				}
				seenBits.Set(key)
			} else {
				key := int64(bu)*int64(k) + int64(bv)
				if seenMap[key] {
					continue
				}
				seenMap[key] = true
			}
			q.addEdgeUnchecked(bu, bv)
		}
	}
	return q, nil
}

// TransitiveReduction returns a copy of g with every edge u→v removed
// when an alternative path u→…→v of length ≥ 2 exists. g must be acyclic.
//
// An edge u→v is redundant iff some other successor w of u reaches v
// (closure row test). Sweeping u's successor list forward and backward
// against a running union of closure rows catches every such witness —
// whichever side of v it appears on — with one Or plus one Test per
// edge and no nested successor scans.
func (g *Graph) TransitiveReduction() (*Graph, error) {
	if !g.IsAcyclic() {
		return nil, ErrCycle
	}
	cl := g.Reachability()
	r := New(g.n)
	covered := bitset.New(g.n)
	var drop []bool
	indeg := make([]int, g.n)
	for u := 0; u < g.n; u++ {
		succs := g.succs[u]
		if len(succs) == 0 {
			continue
		}
		keep := make([]int32, 0, len(succs))
		if len(succs) == 1 {
			keep = append(keep, succs[0])
		} else {
			if cap(drop) < len(succs) {
				drop = make([]bool, len(succs))
			}
			drop = drop[:len(succs)]
			for i := range drop {
				drop[i] = false
			}
			covered.Reset()
			for i, w := range succs { // witnesses listed before v
				if covered.Test(int(w)) {
					drop[i] = true
				}
				covered.Or(cl.Row(int(w)))
			}
			covered.Reset()
			for i := len(succs) - 1; i >= 0; i-- { // witnesses after v
				if covered.Test(int(succs[i])) {
					drop[i] = true
				}
				covered.Or(cl.Row(int(succs[i])))
			}
			for i, w := range succs {
				if !drop[i] {
					keep = append(keep, w)
				}
			}
		}
		r.succs[u] = keep
		r.m += len(keep)
		for _, v := range keep {
			indeg[v]++
		}
	}
	for v := 0; v < g.n; v++ {
		if indeg[v] > 0 {
			r.preds[v] = make([]int32, 0, indeg[v])
		}
	}
	for u := 0; u < g.n; u++ {
		for _, v := range r.succs[u] {
			r.preds[v] = append(r.preds[v], int32(u))
		}
	}
	return r, nil
}
