// Package dag implements the directed-graph substrate used by WOLVES:
// workflow specifications, view (quotient) graphs and provenance graphs
// are all instances of Graph. It provides topological ordering, cycle
// diagnosis via strongly connected components, reachability closures
// (the engine behind every soundness check), quotient construction and
// transitive reduction.
//
// Nodes are dense integers [0, N). Callers that need identifiers keep
// their own mapping (see internal/workflow).
package dag

import (
	"errors"
	"fmt"

	"wolves/internal/bitset"
)

// Graph is a directed graph over nodes 0..n-1 with forward and reverse
// adjacency. Parallel edges are collapsed; self-loops are rejected.
type Graph struct {
	n     int
	m     int
	succs [][]int32
	preds [][]int32
}

// ErrCycle is returned by TopoOrder when the graph is not acyclic.
var ErrCycle = errors.New("dag: graph contains a cycle")

// New returns an empty graph with n nodes.
func New(n int) *Graph {
	if n < 0 {
		panic("dag: negative node count")
	}
	return &Graph{n: n, succs: make([][]int32, n), preds: make([][]int32, n)}
}

// N returns the number of nodes.
func (g *Graph) N() int { return g.n }

// M returns the number of (distinct) edges.
func (g *Graph) M() int { return g.m }

func (g *Graph) checkNode(u int) {
	if u < 0 || u >= g.n {
		panic(fmt.Sprintf("dag: node %d out of range [0,%d)", u, g.n))
	}
}

// AddEdge inserts the edge u→v. Self-loops are an error; duplicate edges
// are ignored. It returns true when a new edge was inserted.
func (g *Graph) AddEdge(u, v int) (bool, error) {
	g.checkNode(u)
	g.checkNode(v)
	if u == v {
		return false, fmt.Errorf("dag: self-loop on node %d", u)
	}
	if g.HasEdge(u, v) {
		return false, nil
	}
	g.succs[u] = append(g.succs[u], int32(v))
	g.preds[v] = append(g.preds[v], int32(u))
	g.m++
	return true, nil
}

// MustAddEdge is AddEdge for construction code with validated inputs.
func (g *Graph) MustAddEdge(u, v int) {
	if _, err := g.AddEdge(u, v); err != nil {
		panic(err)
	}
}

// HasEdge reports whether u→v exists.
func (g *Graph) HasEdge(u, v int) bool {
	g.checkNode(u)
	g.checkNode(v)
	for _, w := range g.succs[u] {
		if int(w) == v {
			return true
		}
	}
	return false
}

// Succs returns the successors of u. The slice is shared; do not mutate.
func (g *Graph) Succs(u int) []int32 {
	g.checkNode(u)
	return g.succs[u]
}

// Preds returns the predecessors of u. The slice is shared; do not mutate.
func (g *Graph) Preds(u int) []int32 {
	g.checkNode(u)
	return g.preds[u]
}

// OutDeg returns the out-degree of u.
func (g *Graph) OutDeg(u int) int { return len(g.Succs(u)) }

// InDeg returns the in-degree of u.
func (g *Graph) InDeg(u int) int { return len(g.Preds(u)) }

// Sources returns all nodes with in-degree zero, ascending.
func (g *Graph) Sources() []int {
	var out []int
	for u := 0; u < g.n; u++ {
		if len(g.preds[u]) == 0 {
			out = append(out, u)
		}
	}
	return out
}

// Sinks returns all nodes with out-degree zero, ascending.
func (g *Graph) Sinks() []int {
	var out []int
	for u := 0; u < g.n; u++ {
		if len(g.succs[u]) == 0 {
			out = append(out, u)
		}
	}
	return out
}

// Edges calls fn for every edge (u,v), ordered by u then insertion.
func (g *Graph) Edges(fn func(u, v int)) {
	for u := 0; u < g.n; u++ {
		for _, v := range g.succs[u] {
			fn(u, int(v))
		}
	}
}

// Clone returns a deep copy of g.
func (g *Graph) Clone() *Graph {
	c := New(g.n)
	c.m = g.m
	for u := 0; u < g.n; u++ {
		c.succs[u] = append([]int32(nil), g.succs[u]...)
		c.preds[u] = append([]int32(nil), g.preds[u]...)
	}
	return c
}

// TopoOrder returns a topological order (Kahn's algorithm, smallest node
// first for determinism) or ErrCycle.
func (g *Graph) TopoOrder() ([]int, error) {
	indeg := make([]int, g.n)
	for u := 0; u < g.n; u++ {
		indeg[u] = len(g.preds[u])
	}
	// A simple binary-heap-free approach: repeatedly scan a ready list
	// kept sorted by construction (we push in ascending node order and
	// pop from the front; ties broken by node id via bucket scan).
	ready := make([]int, 0, g.n)
	for u := 0; u < g.n; u++ {
		if indeg[u] == 0 {
			ready = append(ready, u)
		}
	}
	order := make([]int, 0, g.n)
	for len(ready) > 0 {
		// Pop the smallest ready node for deterministic output.
		mi := 0
		for i := 1; i < len(ready); i++ {
			if ready[i] < ready[mi] {
				mi = i
			}
		}
		u := ready[mi]
		ready[mi] = ready[len(ready)-1]
		ready = ready[:len(ready)-1]
		order = append(order, u)
		for _, v := range g.succs[u] {
			indeg[v]--
			if indeg[v] == 0 {
				ready = append(ready, int(v))
			}
		}
	}
	if len(order) != g.n {
		return nil, ErrCycle
	}
	return order, nil
}

// IsAcyclic reports whether g has no directed cycle.
func (g *Graph) IsAcyclic() bool {
	_, err := g.TopoOrder()
	return err == nil
}

// SCC returns the strongly connected components of g (Tarjan, iterative),
// each sorted ascending, components ordered by smallest member. Trivial
// single-node components are included.
func (g *Graph) SCC() [][]int {
	const unvisited = -1
	index := make([]int, g.n)
	low := make([]int, g.n)
	onStack := make([]bool, g.n)
	for i := range index {
		index[i] = unvisited
	}
	var (
		stack  []int
		comps  [][]int
		idx    int
		frames []frame
	)
	for root := 0; root < g.n; root++ {
		if index[root] != unvisited {
			continue
		}
		frames = append(frames[:0], frame{u: root})
		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			u := f.u
			if f.i == 0 {
				index[u] = idx
				low[u] = idx
				idx++
				stack = append(stack, u)
				onStack[u] = true
			}
			advanced := false
			for f.i < len(g.succs[u]) {
				v := int(g.succs[u][f.i])
				f.i++
				if index[v] == unvisited {
					frames = append(frames, frame{u: v})
					advanced = true
					break
				}
				if onStack[v] && index[v] < low[u] {
					low[u] = index[v]
				}
			}
			if advanced {
				continue
			}
			if low[u] == index[u] {
				var comp []int
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp = append(comp, w)
					if w == u {
						break
					}
				}
				sortInts(comp)
				comps = append(comps, comp)
			}
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				p := frames[len(frames)-1].u
				if low[u] < low[p] {
					low[p] = low[u]
				}
			}
		}
	}
	// Order components by smallest member for determinism.
	for i := 1; i < len(comps); i++ {
		for j := i; j > 0 && comps[j][0] < comps[j-1][0]; j-- {
			comps[j], comps[j-1] = comps[j-1], comps[j]
		}
	}
	return comps
}

type frame struct {
	u, i int
}

func sortInts(xs []int) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

// Quotient builds the quotient graph induced by the partition partOf,
// where partOf[u] ∈ [0,k) names u's block. Inter-block multi-edges are
// collapsed; intra-block edges are dropped. The quotient of a DAG may be
// cyclic; callers diagnose that with SCC or TopoOrder.
func (g *Graph) Quotient(partOf []int, k int) (*Graph, error) {
	if len(partOf) != g.n {
		return nil, fmt.Errorf("dag: partition has %d entries, graph has %d nodes", len(partOf), g.n)
	}
	q := New(k)
	seen := make(map[int64]bool, g.m)
	for u := 0; u < g.n; u++ {
		bu := partOf[u]
		if bu < 0 || bu >= k {
			return nil, fmt.Errorf("dag: node %d assigned to invalid block %d", u, bu)
		}
		for _, v32 := range g.succs[u] {
			bv := partOf[v32]
			if bv < 0 || bv >= k {
				return nil, fmt.Errorf("dag: node %d assigned to invalid block %d", v32, bv)
			}
			if bu == bv {
				continue
			}
			key := int64(bu)*int64(k) + int64(bv)
			if !seen[key] {
				seen[key] = true
				q.succs[bu] = append(q.succs[bu], int32(bv))
				q.preds[bv] = append(q.preds[bv], int32(bu))
				q.m++
			}
		}
	}
	return q, nil
}

// TransitiveReduction returns a copy of g with every edge u→v removed
// when an alternative path u→…→v of length ≥ 2 exists. g must be acyclic.
func (g *Graph) TransitiveReduction() (*Graph, error) {
	if !g.IsAcyclic() {
		return nil, ErrCycle
	}
	cl := g.Reachability()
	r := New(g.n)
	for u := 0; u < g.n; u++ {
		for _, v32 := range g.succs[u] {
			v := int(v32)
			redundant := false
			for _, w32 := range g.succs[u] {
				w := int(w32)
				if w != v && cl.Reaches(w, v) {
					redundant = true
					break
				}
			}
			if !redundant {
				r.MustAddEdge(u, v)
			}
		}
	}
	return r, nil
}

// Closure is a reachability matrix: one bitset row per node holding the
// reflexive-transitive successors of that node.
type Closure struct {
	rows []*bitset.Set
}

// Reachability computes the reflexive-transitive closure of g. Acyclic
// graphs use a reverse-topological dynamic program (each row is the union
// of successor rows); cyclic graphs fall back to per-node BFS, so view
// quotient graphs with cycles are still handled.
func (g *Graph) Reachability() *Closure {
	if order, err := g.TopoOrder(); err == nil {
		return g.reachabilityDP(order)
	}
	return g.ReachabilityBFS()
}

func (g *Graph) reachabilityDP(order []int) *Closure {
	rows := make([]*bitset.Set, g.n)
	for i := len(order) - 1; i >= 0; i-- {
		u := order[i]
		row := bitset.New(g.n)
		row.Set(u)
		for _, v := range g.succs[u] {
			row.Or(rows[v])
		}
		rows[u] = row
	}
	return &Closure{rows: rows}
}

// ReachabilityBFS computes the closure with one BFS per node. Exposed for
// the A3 ablation benchmark; Reachability chooses automatically.
func (g *Graph) ReachabilityBFS() *Closure {
	rows := make([]*bitset.Set, g.n)
	queue := make([]int, 0, g.n)
	for s := 0; s < g.n; s++ {
		row := bitset.New(g.n)
		row.Set(s)
		queue = append(queue[:0], s)
		for len(queue) > 0 {
			u := queue[len(queue)-1]
			queue = queue[:len(queue)-1]
			for _, v := range g.succs[u] {
				if !row.Test(int(v)) {
					row.Set(int(v))
					queue = append(queue, int(v))
				}
			}
		}
		rows[s] = row
	}
	return &Closure{rows: rows}
}

// Reaches reports whether u reaches v (reflexively: Reaches(u,u) = true).
func (c *Closure) Reaches(u, v int) bool { return c.rows[u].Test(v) }

// Row returns the reachability row of u. Shared storage; do not mutate.
func (c *Closure) Row(u int) *bitset.Set { return c.rows[u] }

// N returns the number of nodes covered by the closure.
func (c *Closure) N() int { return len(c.rows) }

// Pairs returns the number of ordered reachable pairs, excluding the
// reflexive ones. This is the "size" of the provenance relation.
func (c *Closure) Pairs() int {
	total := 0
	for _, r := range c.rows {
		total += r.Count() - 1
	}
	return total
}
