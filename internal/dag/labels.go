package dag

import "slices"

// This file implements the interval / tree-cover reachability label
// index (Agrawal–Borgida–Jagadish): each node carries a short sorted
// list of postorder intervals whose union covers exactly the postorder
// positions of its reachable set. Membership — "does u reach v?" — is a
// binary search over u's intervals instead of a closure-row bit test,
// and, unlike closure rows, a label fits in a couple of cache lines, so
// the query serve path never touches an O(n)-bit row.
//
// Construction numbers a spanning forest of the condensation in
// postorder (so every subtree owns a contiguous interval), then merges
// successor labels in reverse topological order. Cyclic inputs (view
// quotient graphs of unsound views) are handled by labeling the
// condensation: all members of a strongly connected component share one
// label and one postorder position, which reproduces the reflexive
// closure semantics of Reachability exactly.
//
// Worst-case label size is O(n) intervals per node; graphs that
// actually hit that blow-up are detected by an interval budget, in
// which case Build returns nil and callers fall back to closure rows.

// Interval is a closed range [Lo, Hi] of postorder positions.
type Interval struct {
	Lo, Hi int32
}

// Labels is a reachability label index over a fixed node set. It is
// immutable from the reader's point of view: the maintenance entry
// points (Patch, Grow) are called only by the IncrementalClosure that
// owns it, under the registry's write lock, and Fork snapshots the
// mutable row table for lock-free readers.
type Labels struct {
	// pos[u] is the postorder position of u's condensation component.
	// Members of one SCC share a position.
	pos []int32
	// byPosStart/byPosNodes map a postorder position back to its member
	// nodes (CSR layout): position p owns byPosNodes[byPosStart[p]:
	// byPosStart[p+1]]. For acyclic graphs every position is a single
	// node.
	byPosStart []int32
	byPosNodes []int32
	// rows[u] is u's sorted, disjoint, non-adjacent interval cover.
	// Members of one SCC share a row at build time; Patch always
	// installs a freshly allocated row, never mutates one in place, so
	// forked snapshots stay immutable.
	rows [][]Interval

	intervals int   // current total interval count across rows
	patches   int64 // Patch calls since the last build
}

// labelBudgetFactor bounds the total interval count of a label index to
// factor×n (+ a small constant floor). Beyond it the cover is
// degenerating toward quadratic memory and closure rows are the better
// representation, so Build gives up and returns nil. 128 admits dense
// layered DAGs (a 4096-task, 16-layer, p=0.05 graph needs ~85
// intervals/node ≈ 2.7 MB) while still refusing covers within ~3% of
// the quadratic worst case at that size.
const labelBudgetFactor = 128

func labelBudget(n int) int { return labelBudgetFactor*n + 256 }

// BuildLabels computes the label index of g, cyclic or not. It returns
// nil when the interval budget is exceeded — the caller keeps serving
// from closure rows in that case.
func BuildLabels(g *Graph) *Labels {
	n := g.n
	l := &Labels{
		pos:        make([]int32, n),
		byPosStart: make([]int32, 1, n+1),
		byPosNodes: make([]int32, 0, n),
	}
	if n == 0 {
		l.rows = [][]Interval{}
		return l
	}

	// Condense. sccOf[u] names u's component; comps are ordered by
	// smallest member, which SCC already guarantees, so singleton-SCC
	// (acyclic) graphs get component indices identical to a plain
	// renumbering.
	comps := g.SCC()
	p := len(comps)
	sccOf := make([]int32, n)
	for ci, comp := range comps {
		for _, u := range comp {
			sccOf[u] = int32(ci)
		}
	}

	// Condensation adjacency, deduplicated with a stamp array.
	csuccs := make([][]int32, p)
	stamp := make([]int32, p)
	for i := range stamp {
		stamp[i] = -1
	}
	for ci := int32(0); ci < int32(p); ci++ {
		for _, u := range comps[ci] {
			for _, v := range g.succs[u] {
				cv := sccOf[v]
				if cv == ci || stamp[cv] == ci {
					continue
				}
				stamp[cv] = ci
				csuccs[ci] = append(csuccs[ci], cv)
			}
		}
	}

	// Spanning forest + postorder numbering over the condensation.
	// lo[c] is the counter value when c is first entered, post[c] the
	// value assigned on exit: c's spanning subtree owns exactly
	// [lo[c], post[c]].
	const unvisited = -1
	post := make([]int32, p)
	lo := make([]int32, p)
	for i := range post {
		post[i] = unvisited
	}
	var counter int32
	type dfsFrame struct {
		c int32
		i int
	}
	var stack []dfsFrame
	order := make([]int32, 0, p) // DFS finish order = reverse topo prefix order
	for root := int32(0); root < int32(p); root++ {
		if post[root] != unvisited {
			continue
		}
		lo[root] = counter
		post[root] = -2 // on stack
		stack = append(stack[:0], dfsFrame{c: root})
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			advanced := false
			for f.i < len(csuccs[f.c]) {
				c := csuccs[f.c][f.i]
				f.i++
				if post[c] == unvisited {
					lo[c] = counter
					post[c] = -2
					stack = append(stack, dfsFrame{c: c})
					advanced = true
					break
				}
			}
			if advanced {
				continue
			}
			post[f.c] = counter
			counter++
			order = append(order, f.c)
			stack = stack[:len(stack)-1]
		}
	}

	// pos + position→nodes (positions 0..p-1; position of component c is
	// post[c], so group component members by post).
	compAtPos := make([]int32, p)
	for c := int32(0); c < int32(p); c++ {
		compAtPos[post[c]] = c
	}
	for q := 0; q < p; q++ {
		comp := comps[compAtPos[q]]
		for _, u := range comp {
			l.pos[u] = int32(q)
			l.byPosNodes = append(l.byPosNodes, int32(u))
		}
		l.byPosStart = append(l.byPosStart, int32(len(l.byPosNodes)))
	}

	// Reverse-topological label merge over the condensation. The DFS
	// finish order is a reverse topological order of the condensation
	// (every successor finishes before its predecessors), so iterating
	// it forward visits all successors of c before c.
	crows := make([][]Interval, p)
	budget := labelBudget(n)
	var scratch []Interval
	for _, c := range order {
		scratch = scratch[:0]
		scratch = append(scratch, Interval{Lo: lo[c], Hi: post[c]})
		for _, s := range csuccs[c] {
			scratch = append(scratch, crows[s]...)
		}
		row := mergeIntervals(nil, scratch)
		crows[c] = row
		l.intervals += len(row)
		if l.intervals > budget {
			return nil
		}
	}
	// Rows are shared across SCC members (and counted once: the shared
	// slice is resident once). Patch only ever runs on acyclic graphs,
	// where every component is a singleton, so its per-row accounting
	// agrees with this count.
	l.rows = make([][]Interval, n)
	for u := 0; u < n; u++ {
		l.rows[u] = crows[sccOf[u]]
	}
	return l
}

// mergeIntervals sorts ivs by Lo and coalesces overlapping or adjacent
// intervals into dst (reset to length 0 first). Positions are integral,
// so [1,3] and [4,6] merge into [1,6].
func mergeIntervals(dst, ivs []Interval) []Interval {
	dst = dst[:0]
	if len(ivs) == 0 {
		return dst
	}
	slices.SortFunc(ivs, func(a, b Interval) int { return int(a.Lo) - int(b.Lo) })
	cur := ivs[0]
	for _, iv := range ivs[1:] {
		if iv.Lo <= cur.Hi+1 {
			if iv.Hi > cur.Hi {
				cur.Hi = iv.Hi
			}
			continue
		}
		dst = append(dst, cur)
		cur = iv
	}
	return append(dst, cur)
}

// Reaches reports whether u reaches v, reflexively, exactly as
// Closure.Reaches does. O(log k) in u's interval count k, with a linear
// scan below a handful of intervals.
func (l *Labels) Reaches(u, v int) bool {
	p := l.pos[v]
	row := l.rows[u]
	if len(row) <= 8 {
		for _, iv := range row {
			if p < iv.Lo {
				return false
			}
			if p <= iv.Hi {
				return true
			}
		}
		return false
	}
	// First interval with Lo > p; the candidate is its predecessor.
	lo, hi := 0, len(row)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if row[mid].Lo <= p {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo > 0 && row[lo-1].Hi >= p
}

// AppendReachable appends the reachable set of u (reflexive, ascending
// node order) to dst and returns the extended slice. This is the
// ordered iterator of the index: it walks u's intervals and the
// position→node table, never a closure row.
func (l *Labels) AppendReachable(dst []int32, u int) []int32 {
	start := len(dst)
	for _, iv := range l.rows[u] {
		lo, hi := l.byPosStart[iv.Lo], l.byPosStart[iv.Hi+1]
		dst = append(dst, l.byPosNodes[lo:hi]...)
	}
	added := dst[start:]
	slices.Sort(added)
	return dst
}

// Patch merges v's label row into w's, maintaining the exact-cover
// invariant after the closure gains reach(w) ⊇ reach(v) (the Italiano
// edge-insertion step). The merged row is freshly allocated and
// assigned — rows shared with forked snapshots are never written.
// Patch is only meaningful on indexes built over acyclic graphs (the
// IncrementalClosure's case); SCC-shared rows are never patched.
func (l *Labels) Patch(w, v int) {
	old := l.rows[w]
	scratch := make([]Interval, 0, len(old)+len(l.rows[v]))
	scratch = append(scratch, old...)
	scratch = append(scratch, l.rows[v]...)
	// In-place merge: dst aliases scratch's front, which is safe (the
	// write index never catches the read index) and saves a second
	// allocation; the result is retained as the new row.
	merged := mergeIntervals(scratch[:0], scratch)
	l.rows[w] = merged
	l.intervals += len(merged) - len(old)
	l.patches++
}

// Grow appends k new isolated nodes, each its own postorder position
// with a singleton self-interval — exactly what a from-scratch build of
// the grown graph produces for isolated nodes appended last. All
// existing rows and tables are untouched (append-only), so forked
// snapshots remain valid.
func (l *Labels) Grow(k int) {
	for i := 0; i < k; i++ {
		u := int32(len(l.pos))
		q := int32(len(l.byPosStart) - 1)
		l.pos = append(l.pos, q)
		l.byPosNodes = append(l.byPosNodes, u)
		l.byPosStart = append(l.byPosStart, int32(len(l.byPosNodes)))
		l.rows = append(l.rows, []Interval{{Lo: q, Hi: q}})
		l.intervals++
	}
}

// Fork returns a snapshot sharing every append-only table with l but
// owning its own copy of the row table. Later Patch calls install fresh
// rows into l only; later Grow calls append past the fork's length.
// The snapshot is safe for concurrent readers while the original keeps
// mutating under its owner's lock.
func (l *Labels) Fork() *Labels {
	return &Labels{
		pos:        l.pos,
		byPosStart: l.byPosStart,
		byPosNodes: l.byPosNodes,
		rows:       slices.Clone(l.rows),
		intervals:  l.intervals,
		patches:    l.patches,
	}
}

// MarkRow sets, in mark — a position-indexed bit array with at least
// MarkWords(l.N()) words, zeroed by the caller — every postorder
// position of u's reachable set. Together with Marked this turns a
// batch of membership tests against one source node into O(1) lookups:
// interval runs are set word-wise, so marking costs O(intervals +
// span/64) regardless of how many tests follow.
func (l *Labels) MarkRow(mark []uint64, u int) {
	for _, iv := range l.rows[u] {
		lw, hw := int(iv.Lo)>>6, int(iv.Hi)>>6
		loMask := ^uint64(0) << (uint(iv.Lo) & 63)
		hiMask := ^uint64(0) >> (63 - (uint(iv.Hi) & 63))
		if lw == hw {
			mark[lw] |= loMask & hiMask
			continue
		}
		mark[lw] |= loMask
		for w := lw + 1; w < hw; w++ {
			mark[w] = ^uint64(0)
		}
		mark[hw] |= hiMask
	}
}

// Marked reports whether v's position was set in mark by a MarkRow on
// this same index: Marked(mark, v) after MarkRow(mark, u) is exactly
// Reaches(u, v).
func (l *Labels) Marked(mark []uint64, v int) bool {
	p := l.pos[v]
	return mark[p>>6]&(1<<(uint(p)&63)) != 0
}

// MarkWords returns the scratch length MarkRow needs for n nodes.
func MarkWords(n int) int { return (n + 63) / 64 }

// N returns the number of labeled nodes.
func (l *Labels) N() int { return len(l.pos) }

// Intervals returns the total interval count across all rows (shared
// SCC rows counted once per node).
func (l *Labels) Intervals() int { return l.intervals }

// Patches returns the number of Patch calls since the build.
func (l *Labels) Patches() int64 { return l.patches }

// MemoryBytes estimates the resident size of the index.
func (l *Labels) MemoryBytes() int64 {
	b := int64(len(l.pos))*4 + int64(len(l.byPosStart))*4 + int64(len(l.byPosNodes))*4
	b += int64(len(l.rows)) * 24 // slice headers
	b += int64(l.intervals) * 8
	return b
}
