package dag

import (
	"fmt"
	"math/rand"
	"testing"
)

// layeredDAG builds a layered random DAG in the shape of gen.Layered
// (which cannot be imported here without a cycle): tasks spread over
// layers, dense adjacent-layer edges plus sparse skip edges. It is the
// workload for the closure benchmarks demanded by the perf roadmap.
func layeredDAG(n, layers int, edgeProb, skipProb float64, seed int64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	g := New(n)
	layerOf := make([]int, n)
	buckets := make([][]int, layers)
	for i := 0; i < n; i++ {
		l := i * layers / n
		layerOf[i] = l
		buckets[l] = append(buckets[l], i)
	}
	for l := 1; l < layers; l++ {
		for _, t := range buckets[l] {
			connected := false
			for _, p := range buckets[l-1] {
				if rng.Float64() < edgeProb {
					g.MustAddEdge(p, t)
					connected = true
				}
			}
			if !connected {
				g.MustAddEdge(buckets[l-1][rng.Intn(len(buckets[l-1]))], t)
			}
			if skipProb > 0 && l >= 2 {
				for back := 2; back <= l; back++ {
					for _, p := range buckets[l-back] {
						if rng.Float64() < skipProb {
							g.MustAddEdge(p, t)
						}
					}
				}
			}
		}
	}
	return g
}

// BenchmarkReachabilityLayered is the headline closure benchmark: the
// reflexive-transitive closure of layered DAGs at production scales.
func BenchmarkReachabilityLayered(b *testing.B) {
	for _, n := range []int{512, 2048} {
		g := layeredDAG(n, n/32, 0.1, 0.005, 7)
		b.Run(fmt.Sprintf("n=%d/m=%d", n, g.M()), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				g.Reachability()
			}
		})
	}
}

// BenchmarkTopoOrderLayered isolates the topological-sort cost on the
// same graphs (the seed used an O(n²) min-scan ready list).
func BenchmarkTopoOrderLayered(b *testing.B) {
	for _, n := range []int{512, 2048} {
		g := layeredDAG(n, n/32, 0.1, 0.005, 7)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := g.TopoOrder(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkGraphConstruction measures bulk AddEdge throughput (the seed
// deduplicated with a linear HasEdge scan, making construction O(n·d²)).
func BenchmarkGraphConstruction(b *testing.B) {
	for _, n := range []int{512, 2048} {
		proto := layeredDAG(n, n/32, 0.1, 0.005, 7)
		type edge struct{ u, v int }
		var edges []edge
		proto.Edges(func(u, v int) { edges = append(edges, edge{u, v}) })
		b.Run(fmt.Sprintf("n=%d/m=%d", n, len(edges)), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				g := New(n)
				for _, e := range edges {
					g.MustAddEdge(e.u, e.v)
				}
			}
		})
	}
}

// BenchmarkTransitiveReduction measures the redundant-edge sweep.
func BenchmarkTransitiveReduction(b *testing.B) {
	for _, n := range []int{256, 1024} {
		g := layeredDAG(n, n/32, 0.15, 0.01, 11)
		b.Run(fmt.Sprintf("n=%d/m=%d", n, g.M()), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := g.TransitiveReduction(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
