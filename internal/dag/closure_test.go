package dag

import (
	"math/rand"
	"runtime"
	"testing"
)

// referenceClosure is the obviously-correct oracle the Matrix-backed
// closure is pinned against: one boolean-matrix BFS per source, no
// bitsets, no shared state.
func referenceClosure(g *Graph) [][]bool {
	n := g.N()
	out := make([][]bool, n)
	for s := 0; s < n; s++ {
		row := make([]bool, n)
		row[s] = true
		queue := []int{s}
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for _, v := range g.Succs(u) {
				if !row[v] {
					row[v] = true
					queue = append(queue, int(v))
				}
			}
		}
		out[s] = row
	}
	return out
}

func checkClosureAgainstReference(t *testing.T, g *Graph, c *Closure) {
	t.Helper()
	want := referenceClosure(g)
	if c.N() != g.N() {
		t.Fatalf("closure covers %d nodes, graph has %d", c.N(), g.N())
	}
	for u := 0; u < g.N(); u++ {
		row := c.Row(u)
		if row.Cap() != g.N() {
			t.Fatalf("row %d capacity %d, want %d", u, row.Cap(), g.N())
		}
		for v := 0; v < g.N(); v++ {
			if row.Test(v) != want[u][v] || c.Reaches(u, v) != want[u][v] {
				t.Fatalf("closure[%d][%d] = %v, reference says %v",
					u, v, row.Test(v), want[u][v])
			}
		}
	}
}

// TestClosureMatrixEquivalenceRandomDAGs pins the flat-Matrix closure to
// the reference result on random DAGs (the DP path) across densities.
func TestClosureMatrixEquivalenceRandomDAGs(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 40; trial++ {
		n := 1 + rng.Intn(60)
		g := randomDAG(rng, n, rng.Float64()*0.4)
		checkClosureAgainstReference(t, g, g.Reachability())
		checkClosureAgainstReference(t, g, g.ReachabilityBFS())
	}
}

// TestClosureMatrixEquivalenceCyclicQuotients pins the BFS fallback on
// cyclic graphs arising exactly as in production: quotients of random
// DAGs under random partitions (plus raw random digraphs for good
// measure).
func TestClosureMatrixEquivalenceCyclicQuotients(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	sawCycle := false
	for trial := 0; trial < 60; trial++ {
		n := 2 + rng.Intn(50)
		g := randomDAG(rng, n, 0.15+rng.Float64()*0.3)
		k := 1 + rng.Intn(n/2+1)
		partOf := make([]int, n)
		for u := range partOf {
			partOf[u] = rng.Intn(k)
		}
		q, err := g.Quotient(partOf, k)
		if err != nil {
			t.Fatal(err)
		}
		if !q.IsAcyclic() {
			sawCycle = true
		}
		checkClosureAgainstReference(t, q, q.Reachability())
		checkClosureAgainstReference(t, q, q.ReachabilityBFS())
	}
	if !sawCycle {
		t.Fatal("test workload never produced a cyclic quotient; strengthen it")
	}
	// Raw cyclic digraphs.
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.Intn(40)
		g := New(n)
		for e := 0; e < 3*n; e++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u != v {
				g.MustAddEdge(u, v)
			}
		}
		checkClosureAgainstReference(t, g, g.Reachability())
	}
}

// TestClosureParallelPaths forces the worker-pool construction paths
// (level-parallel DP, per-source-sharded BFS) by raising GOMAXPROCS
// above one and crossing the size threshold, then pins the result to
// the reference closure.
func TestClosureParallelPaths(t *testing.T) {
	old := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(old)
	if parallelThreshold > 600 {
		t.Fatalf("test graph no longer crosses parallelThreshold = %d", parallelThreshold)
	}

	g := layeredDAG(600, 20, 0.05, 0.004, 13)
	if closureWorkers(g.N()) < 2 {
		t.Fatal("expected a multi-worker closure build")
	}
	checkClosureAgainstReference(t, g, g.Reachability())

	// Cyclic: random digraph exercises the sharded BFS fallback.
	rng := rand.New(rand.NewSource(5))
	c := New(600)
	for e := 0; e < 2400; e++ {
		u, v := rng.Intn(600), rng.Intn(600)
		if u != v {
			c.MustAddEdge(u, v)
		}
	}
	if c.IsAcyclic() {
		t.Fatal("random digraph should be cyclic")
	}
	checkClosureAgainstReference(t, c, c.Reachability())
}
