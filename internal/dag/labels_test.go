package dag

import (
	"math/rand"
	"testing"
)

// randDAG builds a random DAG on n nodes: edges only from lower to
// higher index, so acyclicity is structural.
func randDAG(rng *rand.Rand, n int, p float64) *Graph {
	g := New(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Float64() < p {
				g.MustAddEdge(u, v)
			}
		}
	}
	return g
}

// randDigraph builds a random directed graph that may contain cycles.
func randDigraph(rng *rand.Rand, n int, p float64) *Graph {
	g := New(n)
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			if u != v && rng.Float64() < p {
				g.MustAddEdge(u, v)
			}
		}
	}
	return g
}

// checkLabelsMatchClosure asserts that l answers exactly like the
// closure for every ordered pair, and that the ordered iterator
// enumerates exactly the closure row members.
func checkLabelsMatchClosure(t *testing.T, g *Graph, l *Labels) {
	t.Helper()
	if l == nil {
		t.Fatal("BuildLabels returned nil within budget")
	}
	c := g.Reachability()
	n := g.N()
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			want := c.Reaches(u, v)
			if got := l.Reaches(u, v); got != want {
				t.Fatalf("Reaches(%d,%d) = %v, closure says %v", u, v, got, want)
			}
		}
	}
	mark := make([]uint64, MarkWords(n))
	for u := 0; u < n; u++ {
		clear(mark)
		l.MarkRow(mark, u)
		for v := 0; v < n; v++ {
			if got := l.Marked(mark, v); got != c.Reaches(u, v) {
				t.Fatalf("Marked(%d,%d) = %v, closure says %v", u, v, got, c.Reaches(u, v))
			}
		}
	}
	var buf []int32
	for u := 0; u < n; u++ {
		buf = l.AppendReachable(buf[:0], u)
		members := c.Row(u).Members()
		if len(buf) != len(members) {
			t.Fatalf("AppendReachable(%d): %d nodes, closure row has %d", u, len(buf), len(members))
		}
		for i, m := range members {
			if int(buf[i]) != m {
				t.Fatalf("AppendReachable(%d)[%d] = %d, want %d", u, i, buf[i], m)
			}
		}
	}
}

func TestLabelsMatchClosureRandomDAGs(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for _, n := range []int{0, 1, 2, 3, 8, 17, 40, 80} {
		for _, p := range []float64{0, 0.02, 0.1, 0.4, 0.9} {
			g := randDAG(rng, n, p)
			checkLabelsMatchClosure(t, g, BuildLabels(g))
		}
	}
}

func TestLabelsMatchClosureCyclic(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for _, n := range []int{2, 3, 8, 17, 40} {
		for _, p := range []float64{0.05, 0.15, 0.5} {
			g := randDigraph(rng, n, p)
			checkLabelsMatchClosure(t, g, BuildLabels(g))
		}
	}
}

func TestLabelsGrowAndPatchViaIncremental(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	ic, err := NewIncrementalClosure(New(6))
	if err != nil {
		t.Fatal(err)
	}
	for step := 0; step < 1200; step++ {
		if rng.Intn(12) == 0 {
			ic.Grow(1 + rng.Intn(3))
		}
		n := ic.N()
		if n >= 2 {
			u, v := rng.Intn(n), rng.Intn(n)
			_, _ = ic.AddEdge(u, v, nil) // cycles/self-loops rejected, fine
		}
		if step%97 == 0 {
			checkLabelsMatchClosure(t, ic.Graph(), ic.Labels())
			checkLabelsMatchClosure(t, ic.Graph().Reversed(), ic.RevLabels())
		}
	}
	checkLabelsMatchClosure(t, ic.Graph(), ic.Labels())
	checkLabelsMatchClosure(t, ic.Graph().Reversed(), ic.RevLabels())
	if ic.LabelRebuilds() == 0 {
		t.Fatal("expected at least one threshold rebuild over 1200 mutations")
	}
}

func TestLabelsRollbackRebuilds(t *testing.T) {
	g := New(4)
	g.MustAddEdge(0, 1)
	ic, err := NewIncrementalClosure(g)
	if err != nil {
		t.Fatal(err)
	}
	ic.Grow(2)
	if _, err := ic.AddEdge(1, 4, nil); err != nil {
		t.Fatal(err)
	}
	ic.Rollback(4, [][2]int{{1, 4}})
	checkLabelsMatchClosure(t, ic.Graph(), ic.Labels())
	if ic.N() != 4 {
		t.Fatalf("N = %d after rollback, want 4", ic.N())
	}
}

func TestLabelsFork(t *testing.T) {
	g := New(5)
	g.MustAddEdge(0, 1)
	g.MustAddEdge(1, 2)
	ic, err := NewIncrementalClosure(g)
	if err != nil {
		t.Fatal(err)
	}
	snap := ic.Labels().Fork()
	if _, err := ic.AddEdge(2, 3, nil); err != nil {
		t.Fatal(err)
	}
	ic.Grow(2)
	// The fork answers for the old world: 2 did not reach 3.
	if snap.Reaches(2, 3) {
		t.Fatal("fork sees a post-fork edge")
	}
	if !snap.Reaches(0, 2) {
		t.Fatal("fork lost a pre-fork path")
	}
	// The live index answers for the new world.
	checkLabelsMatchClosure(t, ic.Graph(), ic.Labels())
}

func TestLabelsStats(t *testing.T) {
	g := randDAG(rand.New(rand.NewSource(11)), 30, 0.1)
	l := BuildLabels(g)
	if l.N() != 30 {
		t.Fatalf("N = %d", l.N())
	}
	if l.Intervals() <= 0 {
		t.Fatal("no intervals counted")
	}
	if l.MemoryBytes() <= 0 {
		t.Fatal("no memory accounted")
	}
}
