package bitset

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewAndBasicOps(t *testing.T) {
	s := New(130)
	if s.Cap() != 130 {
		t.Fatalf("Cap = %d, want 130", s.Cap())
	}
	if s.Any() {
		t.Fatal("new set should be empty")
	}
	s.Set(0)
	s.Set(64)
	s.Set(129)
	if !s.Test(0) || !s.Test(64) || !s.Test(129) {
		t.Fatal("expected bits 0,64,129 set")
	}
	if s.Test(1) || s.Test(63) || s.Test(128) {
		t.Fatal("unexpected bits set")
	}
	if got := s.Count(); got != 3 {
		t.Fatalf("Count = %d, want 3", got)
	}
	s.Clear(64)
	if s.Test(64) {
		t.Fatal("bit 64 should be cleared")
	}
	if got := s.Count(); got != 2 {
		t.Fatalf("Count = %d, want 2", got)
	}
}

func TestZeroCapacity(t *testing.T) {
	s := New(0)
	if s.Any() {
		t.Fatal("zero-capacity set must be empty")
	}
	s.Fill()
	if s.Count() != 0 {
		t.Fatal("Fill on zero-capacity set must keep it empty")
	}
	if s.NextSet(0) != -1 {
		t.Fatal("NextSet on empty set must be -1")
	}
}

func TestOutOfRangePanics(t *testing.T) {
	cases := []func(*Set){
		func(s *Set) { s.Set(-1) },
		func(s *Set) { s.Set(10) },
		func(s *Set) { s.Test(10) },
		func(s *Set) { s.Clear(-5) },
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			fn(New(10))
		}()
	}
}

func TestCapacityMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on capacity mismatch")
		}
	}()
	New(10).Or(New(11))
}

func TestFillRespectsCapacity(t *testing.T) {
	for _, n := range []int{1, 63, 64, 65, 128, 200} {
		s := New(n)
		s.Fill()
		if got := s.Count(); got != n {
			t.Errorf("n=%d: Count after Fill = %d", n, got)
		}
	}
}

func TestSetAlgebra(t *testing.T) {
	a := FromInts(100, 1, 2, 3, 70)
	b := FromInts(100, 3, 70, 99)

	u := a.Clone()
	u.Or(b)
	if got := u.Members(); len(got) != 5 {
		t.Fatalf("union members = %v", got)
	}

	i := a.Clone()
	i.And(b)
	if want := FromInts(100, 3, 70); !i.Equal(want) {
		t.Fatalf("intersection = %v", i)
	}

	d := a.Clone()
	d.AndNot(b)
	if want := FromInts(100, 1, 2); !d.Equal(want) {
		t.Fatalf("difference = %v", d)
	}

	if !a.Intersects(b) {
		t.Fatal("a and b intersect")
	}
	if a.Intersects(FromInts(100, 50)) {
		t.Fatal("a does not contain 50")
	}
	if !u.ContainsAll(a) || !u.ContainsAll(b) {
		t.Fatal("union must contain both operands")
	}
	if a.ContainsAll(b) {
		t.Fatal("a does not contain 99")
	}
}

func TestFirstNotIn(t *testing.T) {
	a := FromInts(100, 5, 80)
	b := FromInts(100, 5)
	if got := a.FirstNotIn(b); got != 80 {
		t.Fatalf("FirstNotIn = %d, want 80", got)
	}
	if got := b.FirstNotIn(a); got != -1 {
		t.Fatalf("FirstNotIn = %d, want -1", got)
	}
}

func TestNextSetAndForEach(t *testing.T) {
	s := FromInts(200, 0, 63, 64, 150, 199)
	want := []int{0, 63, 64, 150, 199}
	var got []int
	for i := s.NextSet(0); i != -1; i = s.NextSet(i + 1) {
		got = append(got, i)
	}
	if len(got) != len(want) {
		t.Fatalf("NextSet walk = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("NextSet walk = %v, want %v", got, want)
		}
	}
	var fe []int
	s.ForEach(func(i int) bool { fe = append(fe, i); return true })
	if len(fe) != len(want) {
		t.Fatalf("ForEach = %v", fe)
	}
	// Early termination.
	n := 0
	s.ForEach(func(i int) bool { n++; return n < 2 })
	if n != 2 {
		t.Fatalf("ForEach early stop visited %d", n)
	}
}

func TestNextSetBeyondCapacity(t *testing.T) {
	s := FromInts(10, 3)
	if got := s.NextSet(11); got != -1 {
		t.Fatalf("NextSet(11) = %d", got)
	}
	if got := s.NextSet(-3); got != 3 {
		t.Fatalf("NextSet(-3) = %d", got)
	}
}

func TestCopyFromAndReset(t *testing.T) {
	a := FromInts(64, 1, 2)
	b := New(64)
	b.CopyFrom(a)
	if !b.Equal(a) {
		t.Fatal("CopyFrom mismatch")
	}
	b.Reset()
	if b.Any() {
		t.Fatal("Reset should empty the set")
	}
	if !a.Test(1) {
		t.Fatal("Reset of copy must not affect source")
	}
}

func TestString(t *testing.T) {
	if got := FromInts(10, 1, 4, 7).String(); got != "{1, 4, 7}" {
		t.Fatalf("String = %q", got)
	}
	if got := New(10).String(); got != "{}" {
		t.Fatalf("String = %q", got)
	}
}

// Property: Members is sorted, duplicates-free and consistent with Test.
func TestQuickMembersConsistent(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(300)
		s := New(n)
		ref := map[int]bool{}
		for k := 0; k < rng.Intn(80); k++ {
			i := rng.Intn(n)
			if rng.Intn(4) == 0 {
				s.Clear(i)
				delete(ref, i)
			} else {
				s.Set(i)
				ref[i] = true
			}
		}
		ms := s.Members()
		if len(ms) != len(ref) || s.Count() != len(ref) {
			return false
		}
		prev := -1
		for _, m := range ms {
			if m <= prev || !ref[m] || !s.Test(m) {
				return false
			}
			prev = m
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: De Morgan-ish — (a ∪ b) \ b ⊆ a and a ∩ b ⊆ a.
func TestQuickAlgebraLaws(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(200)
		a, b := New(n), New(n)
		for k := 0; k < n/2; k++ {
			a.Set(rng.Intn(n))
			b.Set(rng.Intn(n))
		}
		u := a.Clone()
		u.Or(b)
		diff := u.Clone()
		diff.AndNot(b)
		if !a.ContainsAll(diff) {
			return false
		}
		i := a.Clone()
		i.And(b)
		if !a.ContainsAll(i) || !b.ContainsAll(i) {
			return false
		}
		// Union count via inclusion-exclusion.
		if u.Count() != a.Count()+b.Count()-i.Count() {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkOr(b *testing.B) {
	x, y := New(4096), New(4096)
	for i := 0; i < 4096; i += 3 {
		y.Set(i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x.Or(y)
	}
}

func BenchmarkContainsAll(b *testing.B) {
	x, y := New(4096), New(4096)
	x.Fill()
	for i := 0; i < 4096; i += 7 {
		y.Set(i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !x.ContainsAll(y) {
			b.Fatal("unexpected")
		}
	}
}
