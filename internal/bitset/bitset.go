// Package bitset provides dense, fixed-capacity bitsets used throughout
// WOLVES for reachability closure rows, composite-task membership and the
// subset dynamic program of the optimal corrector.
//
// The zero value of Set is an empty set of capacity zero; use New to
// allocate a set with a known capacity. All operations that combine two
// sets require equal capacity and panic otherwise: mixing capacities is
// always a programming error in this codebase, never a data error.
package bitset

import (
	"fmt"
	"math/bits"
	"strings"
)

const wordBits = 64

// Set is a fixed-capacity dense bitset.
type Set struct {
	words []uint64
	n     int
}

// New returns an empty set able to hold bits [0, n).
func New(n int) *Set {
	if n < 0 {
		panic("bitset: negative capacity")
	}
	return &Set{words: make([]uint64, (n+wordBits-1)/wordBits), n: n}
}

// FromInts returns a set of capacity n with the given bits set.
func FromInts(n int, xs ...int) *Set {
	s := New(n)
	for _, x := range xs {
		s.Set(x)
	}
	return s
}

// Cap returns the capacity (number of addressable bits).
func (s *Set) Cap() int { return s.n }

func (s *Set) check(i int) {
	if i < 0 || i >= s.n {
		panic(fmt.Sprintf("bitset: index %d out of range [0,%d)", i, s.n))
	}
}

// Set sets bit i.
func (s *Set) Set(i int) {
	s.check(i)
	s.words[i/wordBits] |= 1 << (uint(i) % wordBits)
}

// Clear clears bit i.
func (s *Set) Clear(i int) {
	s.check(i)
	s.words[i/wordBits] &^= 1 << (uint(i) % wordBits)
}

// Test reports whether bit i is set.
func (s *Set) Test(i int) bool {
	s.check(i)
	return s.words[i/wordBits]&(1<<(uint(i)%wordBits)) != 0
}

// Reset clears all bits.
func (s *Set) Reset() {
	for i := range s.words {
		s.words[i] = 0
	}
}

// Fill sets all bits in [0, Cap()).
func (s *Set) Fill() {
	for i := range s.words {
		s.words[i] = ^uint64(0)
	}
	s.trim()
}

// trim zeroes the bits beyond capacity in the last word.
func (s *Set) trim() {
	if s.n%wordBits != 0 && len(s.words) > 0 {
		s.words[len(s.words)-1] &= (1 << (uint(s.n) % wordBits)) - 1
	}
}

// Count returns the number of set bits.
func (s *Set) Count() int {
	c := 0
	for _, w := range s.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// Any reports whether at least one bit is set.
func (s *Set) Any() bool {
	for _, w := range s.words {
		if w != 0 {
			return true
		}
	}
	return false
}

// None reports whether no bit is set.
func (s *Set) None() bool { return !s.Any() }

// Clone returns an independent copy.
func (s *Set) Clone() *Set {
	c := &Set{words: make([]uint64, len(s.words)), n: s.n}
	copy(c.words, s.words)
	return c
}

// CopyFrom overwrites s with the contents of o.
func (s *Set) CopyFrom(o *Set) {
	s.same(o)
	copy(s.words, o.words)
}

func (s *Set) same(o *Set) {
	if s.n != o.n {
		panic(fmt.Sprintf("bitset: capacity mismatch %d vs %d", s.n, o.n))
	}
}

// Or sets s = s ∪ o.
func (s *Set) Or(o *Set) {
	s.same(o)
	for i, w := range o.words {
		s.words[i] |= w
	}
}

// And sets s = s ∩ o.
func (s *Set) And(o *Set) {
	s.same(o)
	for i, w := range o.words {
		s.words[i] &= w
	}
}

// AndNot sets s = s \ o.
func (s *Set) AndNot(o *Set) {
	s.same(o)
	for i, w := range o.words {
		s.words[i] &^= w
	}
}

// Intersects reports whether s ∩ o is non-empty.
func (s *Set) Intersects(o *Set) bool {
	s.same(o)
	for i, w := range o.words {
		if s.words[i]&w != 0 {
			return true
		}
	}
	return false
}

// ContainsAll reports whether o ⊆ s.
func (s *Set) ContainsAll(o *Set) bool {
	s.same(o)
	for i, w := range o.words {
		if w&^s.words[i] != 0 {
			return false
		}
	}
	return true
}

// Equal reports whether s and o hold exactly the same bits.
func (s *Set) Equal(o *Set) bool {
	s.same(o)
	for i, w := range o.words {
		if s.words[i] != w {
			return false
		}
	}
	return true
}

// FirstNotIn returns the smallest set bit of s that is not in o, or -1.
func (s *Set) FirstNotIn(o *Set) int {
	s.same(o)
	for i, w := range s.words {
		if d := w &^ o.words[i]; d != 0 {
			return i*wordBits + bits.TrailingZeros64(d)
		}
	}
	return -1
}

// ForEachNotIn calls fn for every bit set in s but not in o, ascending,
// without materializing the difference (the allocation-free form of
// Clone-then-AndNot-then-iterate). If fn returns false the iteration
// stops.
func (s *Set) ForEachNotIn(o *Set, fn func(i int) bool) {
	s.same(o)
	for wi, w := range s.words {
		for d := w &^ o.words[wi]; d != 0; d &= d - 1 {
			if !fn(wi*wordBits + bits.TrailingZeros64(d)) {
				return
			}
		}
	}
}

// CountNotIn returns |s \ o| without materializing the difference.
func (s *Set) CountNotIn(o *Set) int {
	s.same(o)
	c := 0
	for wi, w := range s.words {
		c += bits.OnesCount64(w &^ o.words[wi])
	}
	return c
}

// NextSet returns the smallest set bit ≥ i, or -1 if none exists.
func (s *Set) NextSet(i int) int {
	if i < 0 {
		i = 0
	}
	if i >= s.n {
		return -1
	}
	wi := i / wordBits
	w := s.words[wi] >> (uint(i) % wordBits)
	if w != 0 {
		return i + bits.TrailingZeros64(w)
	}
	for wi++; wi < len(s.words); wi++ {
		if s.words[wi] != 0 {
			return wi*wordBits + bits.TrailingZeros64(s.words[wi])
		}
	}
	return -1
}

// ForEach calls fn for every set bit in ascending order. If fn returns
// false the iteration stops.
func (s *Set) ForEach(fn func(i int) bool) {
	for wi, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			if !fn(wi*wordBits + b) {
				return
			}
			w &= w - 1
		}
	}
}

// Members returns the set bits in ascending order.
func (s *Set) Members() []int {
	out := make([]int, 0, s.Count())
	s.ForEach(func(i int) bool { out = append(out, i); return true })
	return out
}

// String renders the set as "{1, 4, 7}".
func (s *Set) String() string {
	var b strings.Builder
	b.WriteByte('{')
	first := true
	s.ForEach(func(i int) bool {
		if !first {
			b.WriteString(", ")
		}
		first = false
		fmt.Fprintf(&b, "%d", i)
		return true
	})
	b.WriteByte('}')
	return b.String()
}
