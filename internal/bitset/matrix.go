package bitset

import "fmt"

// Matrix is a dense bit matrix: rows × bits stored in one contiguous
// []uint64 (a single allocation), row-major. It is the backing store of
// reachability closures: a flat layout keeps successive rows adjacent in
// memory, so closure construction and row unions stream through the
// cache instead of chasing per-row pointers.
//
// Rows are addressed [0, Rows()) and bits [0, Bits()). RowView exposes a
// row as a Set sharing the matrix storage, so every Set operation
// (Or, AndNot, ForEach, …) applies to matrix rows without copying.
type Matrix struct {
	words  []uint64
	rows   int
	bits   int
	stride int // words per row
}

// NewMatrix returns a zeroed rows×bits matrix backed by one allocation.
func NewMatrix(rows, bits int) *Matrix {
	if rows < 0 || bits < 0 {
		panic("bitset: negative matrix dimension")
	}
	stride := (bits + wordBits - 1) / wordBits
	return &Matrix{
		words:  make([]uint64, rows*stride),
		rows:   rows,
		bits:   bits,
		stride: stride,
	}
}

// Rows returns the number of rows.
func (m *Matrix) Rows() int { return m.rows }

// Bits returns the per-row capacity.
func (m *Matrix) Bits() int { return m.bits }

func (m *Matrix) checkRow(r int) {
	if r < 0 || r >= m.rows {
		panic(fmt.Sprintf("bitset: row %d out of range [0,%d)", r, m.rows))
	}
}

// row returns the word slice of row r, clipped for bounds-check
// elimination in the word loops below.
func (m *Matrix) row(r int) []uint64 {
	off := r * m.stride
	return m.words[off : off+m.stride : off+m.stride]
}

// RowView returns row r as a Set sharing the matrix storage. Mutating
// the returned set mutates the matrix row; the view stays valid for the
// lifetime of the matrix. The Set header is a value: callers that need a
// *Set take its address, which does not copy the bits.
func (m *Matrix) RowView(r int) Set {
	m.checkRow(r)
	return Set{words: m.row(r), n: m.bits}
}

// SetBit sets bit i of row r.
func (m *Matrix) SetBit(r, i int) {
	m.checkRow(r)
	if i < 0 || i >= m.bits {
		panic(fmt.Sprintf("bitset: bit %d out of range [0,%d)", i, m.bits))
	}
	m.row(r)[i/wordBits] |= 1 << (uint(i) % wordBits)
}

// TestBit reports whether bit i of row r is set.
func (m *Matrix) TestBit(r, i int) bool {
	m.checkRow(r)
	if i < 0 || i >= m.bits {
		panic(fmt.Sprintf("bitset: bit %d out of range [0,%d)", i, m.bits))
	}
	return m.row(r)[i/wordBits]&(1<<(uint(i)%wordBits)) != 0
}

// OrRow sets row dst |= row src word-by-word. dst == src is a no-op.
func (m *Matrix) OrRow(dst, src int) {
	m.checkRow(dst)
	m.checkRow(src)
	if dst == src {
		return
	}
	d, s := m.row(dst), m.row(src)
	for i := range d {
		d[i] |= s[i]
	}
}

// CloseRow performs one closure DP step in a single call: row u gets its
// reflexive bit plus the union of the rows named by srcs. Fusing the
// per-successor unions into one call keeps the destination row hot and
// lets the word loops elide bounds checks — this is the inner kernel of
// dag.Reachability.
func (m *Matrix) CloseRow(u int, srcs []int32) {
	m.checkRow(u)
	if u >= m.bits {
		panic(fmt.Sprintf("bitset: CloseRow needs a square matrix: bit %d out of range [0,%d)", u, m.bits))
	}
	d := m.row(u)
	d[u/wordBits] |= 1 << (uint(u) % wordBits)
	for _, s32 := range srcs {
		s := int(s32)
		m.checkRow(s)
		src := m.row(s)
		d = d[:len(src)]
		for i, w := range src {
			d[i] |= w
		}
	}
}

// OrRowSet sets row r |= s for an external set of matching capacity.
func (m *Matrix) OrRowSet(r int, s *Set) {
	m.checkRow(r)
	if s.n != m.bits {
		panic(fmt.Sprintf("bitset: capacity mismatch %d vs %d", s.n, m.bits))
	}
	d := m.row(r)
	for i, w := range s.words {
		d[i] |= w
	}
}

// CopyRow overwrites row dst with row src.
func (m *Matrix) CopyRow(dst, src int) {
	m.checkRow(dst)
	m.checkRow(src)
	copy(m.row(dst), m.row(src))
}

// RowCount returns the number of set bits in row r.
func (m *Matrix) RowCount(r int) int {
	m.checkRow(r)
	v := m.RowView(r)
	return v.Count()
}

// Equal reports whether m and o have identical dimensions and identical
// bits. Because bits beyond a row's capacity are always zero, word-level
// comparison is exact; the incremental-closure equivalence tests rely on
// this being a byte-identity check against a from-scratch matrix.
func (m *Matrix) Equal(o *Matrix) bool {
	if m.rows != o.rows || m.bits != o.bits {
		return false
	}
	for i, w := range m.words {
		if w != o.words[i] {
			return false
		}
	}
	return true
}

// Clone returns an independent deep copy of m.
func (m *Matrix) Clone() *Matrix {
	c := &Matrix{
		words:  make([]uint64, len(m.words)),
		rows:   m.rows,
		bits:   m.bits,
		stride: m.stride,
	}
	copy(c.words, m.words)
	return c
}

// Embed copies every row of src into the same row of m, bit-aligned at
// zero. m must be at least as large as src in both dimensions; rows and
// bit positions beyond src keep whatever m already holds (zero for a
// fresh matrix) — including destination bits sharing src's final partial
// word. This is the grow path of the incremental closure: widen the
// matrix without touching existing reachability bits.
func (m *Matrix) Embed(src *Matrix) {
	if src.rows > m.rows || src.bits > m.bits {
		panic(fmt.Sprintf("bitset: cannot embed %dx%d matrix into %dx%d",
			src.rows, src.bits, m.rows, m.bits))
	}
	if src.stride == 0 {
		return
	}
	last := src.stride - 1
	// Bits of the final word beyond src.bits: preserved in m, always
	// zero in src rows.
	var tail uint64
	if src.bits%wordBits != 0 {
		tail = ^((uint64(1) << (uint(src.bits) % wordBits)) - 1)
	}
	for r := 0; r < src.rows; r++ {
		d, s := m.row(r), src.row(r)
		copy(d[:last], s[:last])
		d[last] = (d[last] & tail) | s[last]
	}
}
