package bitset

import (
	"math/rand"
	"testing"
)

func TestMatrixBasics(t *testing.T) {
	m := NewMatrix(4, 130)
	if m.Rows() != 4 || m.Bits() != 130 {
		t.Fatalf("dims = %d×%d, want 4×130", m.Rows(), m.Bits())
	}
	m.SetBit(0, 0)
	m.SetBit(0, 129)
	m.SetBit(3, 64)
	if !m.TestBit(0, 0) || !m.TestBit(0, 129) || !m.TestBit(3, 64) {
		t.Fatal("set bits must read back")
	}
	if m.TestBit(1, 0) || m.TestBit(0, 64) {
		t.Fatal("unset bits must read as zero")
	}
	if m.RowCount(0) != 2 || m.RowCount(1) != 0 || m.RowCount(3) != 1 {
		t.Fatal("row counts wrong")
	}
}

func TestMatrixRowViewSharesStorage(t *testing.T) {
	m := NewMatrix(3, 70)
	v := m.RowView(1)
	v.Set(69)
	if !m.TestBit(1, 69) {
		t.Fatal("RowView mutation must reach the matrix")
	}
	m.SetBit(1, 5)
	if !v.Test(5) {
		t.Fatal("matrix mutation must be visible through the view")
	}
	other := New(70)
	other.Set(7)
	v.Or(other)
	if !m.TestBit(1, 7) {
		t.Fatal("Set.Or through a view must reach the matrix")
	}
}

func TestMatrixOrCopyRow(t *testing.T) {
	m := NewMatrix(3, 100)
	m.SetBit(0, 3)
	m.SetBit(1, 97)
	m.OrRow(0, 1)
	if !m.TestBit(0, 3) || !m.TestBit(0, 97) {
		t.Fatal("OrRow must union rows")
	}
	if m.TestBit(1, 3) {
		t.Fatal("OrRow must not touch the source row")
	}
	m.OrRow(2, 2) // self no-op
	if m.RowCount(2) != 0 {
		t.Fatal("self OrRow must be a no-op")
	}
	m.CopyRow(2, 0)
	if m.RowCount(2) != 2 || !m.TestBit(2, 97) {
		t.Fatal("CopyRow must clone the row content")
	}
	s := FromInts(100, 11, 12)
	m.OrRowSet(2, s)
	if !m.TestBit(2, 11) || !m.TestBit(2, 12) {
		t.Fatal("OrRowSet must union an external set into the row")
	}
}

func TestMatrixAgainstSets(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	const rows, bits = 37, 203
	m := NewMatrix(rows, bits)
	ref := make([]*Set, rows)
	for r := range ref {
		ref[r] = New(bits)
	}
	for step := 0; step < 2000; step++ {
		switch rng.Intn(3) {
		case 0:
			r, i := rng.Intn(rows), rng.Intn(bits)
			m.SetBit(r, i)
			ref[r].Set(i)
		case 1:
			d, s := rng.Intn(rows), rng.Intn(rows)
			m.OrRow(d, s)
			if d != s {
				ref[d].Or(ref[s])
			}
		case 2:
			d, s := rng.Intn(rows), rng.Intn(rows)
			m.CopyRow(d, s)
			ref[d].CopyFrom(ref[s])
		}
	}
	for r := 0; r < rows; r++ {
		v := m.RowView(r)
		if !v.Equal(ref[r]) {
			t.Fatalf("row %d diverged from the per-set reference", r)
		}
	}
}

func TestForEachNotIn(t *testing.T) {
	s := FromInts(140, 1, 64, 65, 139)
	o := FromInts(140, 64, 139)
	var got []int
	s.ForEachNotIn(o, func(i int) bool { got = append(got, i); return true })
	if len(got) != 2 || got[0] != 1 || got[1] != 65 {
		t.Fatalf("ForEachNotIn = %v, want [1 65]", got)
	}
	if c := s.CountNotIn(o); c != 2 {
		t.Fatalf("CountNotIn = %d, want 2", c)
	}
	// Early stop.
	got = got[:0]
	s.ForEachNotIn(o, func(i int) bool { got = append(got, i); return false })
	if len(got) != 1 || got[0] != 1 {
		t.Fatalf("early stop ForEachNotIn = %v, want [1]", got)
	}
	// Matches the Clone/AndNot reference on random sets.
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(300)
		a, b := New(n), New(n)
		for i := 0; i < n; i++ {
			if rng.Intn(2) == 0 {
				a.Set(i)
			}
			if rng.Intn(2) == 0 {
				b.Set(i)
			}
		}
		want := a.Clone()
		want.AndNot(b)
		var idx []int
		a.ForEachNotIn(b, func(i int) bool { idx = append(idx, i); return true })
		if len(idx) != want.Count() || len(idx) != a.CountNotIn(b) {
			t.Fatalf("trial %d: difference size mismatch", trial)
		}
		for _, i := range idx {
			if !want.Test(i) {
				t.Fatalf("trial %d: spurious member %d", trial, i)
			}
		}
	}
}

func TestMatrixEqualCloneEmbed(t *testing.T) {
	m := NewMatrix(3, 70)
	m.SetBit(0, 0)
	m.SetBit(1, 69)
	m.SetBit(2, 64)

	c := m.Clone()
	if !m.Equal(c) {
		t.Fatal("clone not equal to original")
	}
	c.SetBit(0, 5)
	if m.Equal(c) {
		t.Fatal("mutated clone still equal (storage shared?)")
	}
	if m.Equal(NewMatrix(3, 71)) || m.Equal(NewMatrix(4, 70)) {
		t.Fatal("dimension mismatch reported equal")
	}

	// Embed into a strictly larger matrix: all bits land at the same
	// (row, bit) coordinates, the extra area stays zero — including
	// destination bits inside src's final partial word (bit 100 lives in
	// the word src's 70 bits end in).
	big := NewMatrix(5, 130)
	big.SetBit(0, 100)
	big.Embed(m)
	if !big.TestBit(0, 100) {
		t.Fatal("embed cleared a destination bit beyond src's capacity")
	}
	big.words[1] &^= 1 << (100 - 64) // clear it again for the zero sweep below
	for r := 0; r < 3; r++ {
		for i := 0; i < 70; i++ {
			if big.TestBit(r, i) != m.TestBit(r, i) {
				t.Fatalf("bit (%d,%d) lost in embed", r, i)
			}
		}
	}
	for r := 0; r < 5; r++ {
		lo := 0
		if r < 3 {
			lo = 70
		}
		for i := lo; i < 130; i++ {
			if big.TestBit(r, i) {
				t.Fatalf("embed set spurious bit (%d,%d)", r, i)
			}
		}
	}

	defer func() {
		if recover() == nil {
			t.Fatal("embedding a larger matrix into a smaller one must panic")
		}
	}()
	m.Embed(big)
}
