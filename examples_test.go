package wolves_test

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// TestExamplesRun executes every example program end to end and checks
// the load-bearing lines of its output. Requires the go toolchain; the
// examples double as integration tests of the public facade.
func TestExamplesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("examples are slow under -short")
	}
	if _, err := exec.LookPath("go"); err != nil {
		t.Skip("go toolchain not on PATH")
	}
	cases := []struct {
		dir  string
		args []string
		want []string
	}{
		{
			dir: "quickstart",
			want: []string{
				"UNSOUND",
				"cleanA ∈ T.in cannot reach cleanB ∈ T.out",
				"false pairs=2",
				"false pairs=0, precision=1.00",
			},
		},
		{
			dir: "phylogenomics",
			want: []string{
				"[!!] 16",
				"does task 3 (in 14) reach task 8 (in 18)? false",
				"audit after correction: 0 false pairs, precision 1.00",
			},
		},
		{
			dir: "repository-audit",
			want: []string{
				"8 of 16 views unsound",
				"UNSOUND",
			},
		},
		{
			dir: "provenance-analysis",
			want: []string{
				"ops view sound? false",
				"2 false pairs",
				"after correction",
				`"processes"`,
			},
		},
		{
			dir: "view-designer",
			want: []string{
				"after merging model+baseline: sound=false",
				"train_model ∈ T.in cannot reach eval_baseline ∈ T.out",
				"final: sound=true",
			},
		},
		{
			dir: "engine-service",
			want: []string{
				"UNSOUND",
				"oracle cache:",
				"corrected ",
				"expired context: code=canceled",
			},
		},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.dir, func(t *testing.T) {
			t.Parallel()
			args := append([]string{"run", "./examples/" + tc.dir}, tc.args...)
			cmd := exec.Command("go", args...)
			cmd.Dir = repoRoot(t)
			out, err := runWithTimeout(t, cmd, 2*time.Minute)
			if err != nil {
				t.Fatalf("example %s failed: %v\n%s", tc.dir, err, out)
			}
			for _, want := range tc.want {
				if !strings.Contains(out, want) {
					t.Fatalf("example %s output missing %q:\n%s", tc.dir, want, out)
				}
			}
		})
	}
}

func repoRoot(t *testing.T) string {
	t.Helper()
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for dir := wd; ; dir = filepath.Dir(dir) {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		if dir == filepath.Dir(dir) {
			t.Fatal("go.mod not found")
		}
	}
}

func runWithTimeout(t *testing.T, cmd *exec.Cmd, d time.Duration) (string, error) {
	t.Helper()
	done := make(chan struct{})
	var out []byte
	var err error
	go func() {
		out, err = cmd.CombinedOutput()
		close(done)
	}()
	select {
	case <-done:
		return string(out), err
	case <-time.After(d):
		if cmd.Process != nil {
			cmd.Process.Kill()
		}
		<-done
		return string(out), err
	}
}
