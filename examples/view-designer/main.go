// View designer: soundness diagnosis while a view is being designed —
// the demo's interactive feedback loop (Figure 2) in scripted form.
//
// Starting from a sound per-arm view of an ML training workflow, the
// user "simplifies" it by merging the model arm with the baseline arm
// (Create Composite Task). WOLVES flags the merge as unsound with a
// witness, the estimator (§3.2) advises which corrector to use, the
// chosen corrector repairs the view, and the user accepts.
package main

import (
	"fmt"
	"log"

	"wolves"
)

func main() {
	log.SetFlags(0)
	entry, err := wolves.RepositoryGet("ml-training")
	if err != nil {
		log.Fatal(err)
	}
	wf := entry.Workflow

	// The sound expert view: one composite per training arm.
	var start *wolves.View
	for _, vs := range entry.Views {
		if vs.View.Name() == "ml-per-arm" {
			start = vs.View
		}
	}
	if start == nil {
		log.Fatal("ml-per-arm view missing from the repository")
	}

	// Also show what an automatic constructor would produce.
	auto, err := wolves.GenBitonStyleView(wf, []string{"eval_model", "eval_baseline"}, "auto")
	if err != nil {
		log.Fatal(err)
	}
	autoRep := wolves.Validate(wolves.NewOracle(wf), auto)
	fmt.Printf("Biton-style auto view: %d composites, sound=%v\n\n", auto.N(), autoRep.Sound)

	session, err := wolves.NewSession(wf, start)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("starting view (%d composites):\n%s\n", start.N(), start.Describe())
	fmt.Printf("validator: sound=%v\n\n", session.Validate().Sound)

	// The user merges both arms "to declutter the display".
	if err := session.MergeTasks("training", "model", "baseline"); err != nil {
		log.Fatal(err)
	}
	report := session.Validate()
	fmt.Printf("after merging model+baseline: sound=%v\n", report.Sound)
	for _, ci := range report.Unsound {
		cr := report.Composites[ci]
		fmt.Printf("  composite %q: %s\n", cr.ID,
			wolves.DescribeViolation(wf, cr.Violations[0]))
	}

	// Estimator advice before choosing a corrector.
	est := wolves.NewEstimator()
	trainEstimator(est)
	ci := report.Unsound[0]
	comp := session.Current().Composite(ci)
	inner := innerEdges(wf, comp.Members())
	fmt.Printf("\nestimates for splitting %q (%d tasks, %d inner edges):\n",
		comp.ID, comp.Size(), inner)
	for _, crit := range []wolves.Criterion{wolves.Weak, wolves.Strong, wolves.Optimal} {
		if pred, ok := est.Predict(comp.Size(), inner, crit.String()); ok {
			fmt.Printf("  %-28s time≈%-12v quality≈%.2f (%d samples)\n",
				crit, pred.AvgTime, pred.AvgQuality, pred.Samples)
		}
	}

	// Split just that composite with the strong corrector, then accept.
	res, err := session.SplitTask("training", wolves.Strong, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsplit %q into %d sound blocks\n", comp.ID, len(res.Blocks))
	final := session.Validate()
	session.Accept()
	fmt.Printf("final: sound=%v, %d composites:\n%s",
		final.Sound, session.Current().N(), session.Current().Describe())
}

// trainEstimator seeds the estimator with a small generated corpus.
func trainEstimator(est *wolves.Estimator) {
	for _, n := range []int{4, 6, 8, 10} {
		for seed := int64(0); seed < 3; seed++ {
			wf, members := wolves.GenUnsoundTask(n, seed)
			oracle := wolves.NewOracle(wf)
			inner := innerEdges(wf, members)
			opt, err := wolves.SplitTask(oracle, members, wolves.Optimal, nil)
			if err != nil {
				log.Fatal(err)
			}
			for _, crit := range []wolves.Criterion{wolves.Weak, wolves.Strong, wolves.Optimal} {
				res, err := wolves.SplitTask(oracle, members, crit, nil)
				if err != nil {
					log.Fatal(err)
				}
				est.Record(n, inner, crit.String(), res.Stats.Elapsed,
					wolves.Quality(len(opt.Blocks), len(res.Blocks)))
			}
		}
	}
}

func innerEdges(wf *wolves.Workflow, members []int) int {
	in := map[int]bool{}
	for _, m := range members {
		in[m] = true
	}
	edges := 0
	wf.Graph().Edges(func(u, v int) {
		if in[u] && in[v] {
			edges++
		}
	})
	return edges
}
