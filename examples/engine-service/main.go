// Engine-service: the serving-path example. One long-lived Engine
// validates and corrects every view of the simulated repository as a
// batch over its worker pool, demonstrates the oracle cache (repeated
// workflows build their reachability closure exactly once), and shows
// the cancellation contract of the exponential Optimal corrector.
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"time"

	"wolves"
)

func main() {
	log.SetFlags(0)
	ctx := context.Background()

	eng := wolves.NewEngine(
		wolves.WithWorkers(8),
		wolves.WithOracleCache(64),
		wolves.WithOptimalTimeout(500*time.Millisecond),
	)

	// Fan every repository view through the validator as one batch.
	var jobs []wolves.ValidateJob
	var names []string
	for _, entry := range wolves.Repository() {
		for _, vs := range entry.Views {
			jobs = append(jobs, wolves.ValidateJob{Workflow: entry.Workflow, View: vs.View})
			names = append(names, entry.Key+"/"+vs.View.Name())
		}
	}
	unsoundIdx := -1
	for i, res := range eng.ValidateBatch(ctx, jobs) {
		if res.Err != nil {
			log.Fatalf("%s: %v", names[i], res.Err)
		}
		status := "sound"
		if !res.Report.Sound {
			status = fmt.Sprintf("UNSOUND (%d composites)", len(res.Report.Unsound))
			if unsoundIdx < 0 {
				unsoundIdx = i
			}
		}
		fmt.Printf("%-44s %s\n", names[i], status)
	}

	stats := eng.CacheStats()
	fmt.Printf("\noracle cache: %d builds for %d jobs (%d hits)\n",
		stats.Builds, len(jobs), stats.Hits)

	// Repair the first unsound view through the same Engine.
	if unsoundIdx >= 0 {
		j := jobs[unsoundIdx]
		vc, err := eng.Correct(ctx, j.Workflow, j.View, wolves.Strong)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("corrected %s: %d → %d composites\n",
			names[unsoundIdx], vc.CompositesBefore, vc.CompositesAfter)
	}

	// Cancellation: an already-expired context aborts immediately with a
	// typed, coded error instead of burning CPU on the exponential DP.
	expired, cancel := context.WithTimeout(ctx, time.Nanosecond)
	defer cancel()
	time.Sleep(time.Millisecond)
	wf1, v1 := wolves.Figure1()
	_, err := eng.Correct(expired, wf1, v1, wolves.Optimal)
	var ee *wolves.Error
	if errors.As(err, &ee) {
		fmt.Printf("expired context: code=%s\n", ee.Code)
	}
}
