// Quickstart: build a small two-source ETL workflow, bundle the two
// cleaning tasks into one composite (the classic unsound-view mistake),
// watch provenance answers go wrong, and let each corrector fix it.
package main

import (
	"fmt"
	"log"
	"os"

	"wolves"
)

func main() {
	log.SetFlags(0)

	// Two independent source→clean→load lanes.
	wf, err := wolves.NewWorkflowBuilder("etl").
		AddTask("extractA").
		AddTask("extractB").
		AddTask("cleanA").
		AddTask("cleanB").
		AddTask("loadA").
		AddTask("loadB").
		AddEdge("extractA", "cleanA").
		AddEdge("extractB", "cleanB").
		AddEdge("cleanA", "loadA").
		AddEdge("cleanB", "loadB").
		Build()
	if err != nil {
		log.Fatal(err)
	}

	// A view that bundles the two cleaners. cleanA never reaches cleanB,
	// so the composite violates Definition 2.3 — and the view invents
	// paths between the two lanes.
	v, err := wolves.ViewFromAssignments(wf, "etl-stages", map[string][]string{
		"srcA":  {"extractA"},
		"srcB":  {"extractB"},
		"clean": {"cleanA", "cleanB"},
		"outA":  {"loadA"},
		"outB":  {"loadB"},
	})
	if err != nil {
		log.Fatal(err)
	}

	oracle := wolves.NewOracle(wf)
	fmt.Println("--- validation ---")
	if err := wolves.Summary(os.Stdout, oracle, v); err != nil {
		log.Fatal(err)
	}

	// Why it matters: the view now claims srcA feeds outB (via the
	// bundled composite) although no such dataflow exists.
	audit := wolves.AuditProvenance(wolves.NewLineageEngine(wf), v)
	fmt.Printf("\nprovenance audit: false pairs=%d, wrong queries=%d of %d, precision=%.2f\n\n",
		audit.FalsePairs, audit.WrongQueries, audit.Composites, audit.Precision)

	for _, crit := range []wolves.Criterion{wolves.Weak, wolves.Strong, wolves.Optimal} {
		fixed, err := wolves.Correct(oracle, v, crit, nil)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("--- corrected with %s (%d → %d composites) ---\n",
			crit, fixed.CompositesBefore, fixed.CompositesAfter)
		fmt.Print(fixed.Corrected.Describe())
		audit := wolves.AuditProvenance(wolves.NewLineageEngine(wf), fixed.Corrected)
		fmt.Printf("provenance audit after: false pairs=%d, precision=%.2f\n\n",
			audit.FalsePairs, audit.Precision)
	}
}
