// Provenance analysis: execute a two-lane genomics workflow, ask lineage
// questions about a concrete run at both workflow and view level, and
// show how bundling the two compute lanes corrupts the answers while the
// corrected view (and the OPM-style trace) stay truthful.
package main

import (
	"bytes"
	"fmt"
	"log"
	"os"

	"wolves"
)

func main() {
	log.SetFlags(0)

	// fetch → split fans into an assembly lane and a mapping lane; each
	// lane has its own QC, heavy compute step, post-processing and
	// publication sink, and both also feed a combined report.
	wf, err := wolves.NewWorkflowBuilder("metagenomics").
		AddTask("fetch").AddTask("split").
		AddTask("qc_asm").AddTask("assemble").AddTask("bin_contigs").AddTask("publish_bins").
		AddTask("qc_map").AddTask("map_reads").AddTask("call_snps").AddTask("publish_vcf").
		AddTask("report").
		AddEdge("fetch", "split").
		Chain("split", "qc_asm", "assemble", "bin_contigs", "publish_bins").
		Chain("split", "qc_map", "map_reads", "call_snps", "publish_vcf").
		AddEdge("bin_contigs", "report").
		AddEdge("call_snps", "report").
		Build()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("workflow: %v\n", wf)

	// Simulate one execution and export its provenance graph.
	trace := wolves.Execute(wf, "run-2026-06-10")
	art, err := trace.ArtifactOf("call_snps")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("execution %s produced %d artifacts; SNP output = %s\n\n",
		trace.RunID, len(trace.Artifacts()), art.ID)

	engine := wolves.NewLineageEngine(wf)
	fmt.Println("--- exact lineage (workflow level) ---")
	if err := wolves.Dependencies(os.Stdout, engine, "call_snps"); err != nil {
		log.Fatal(err)
	}

	// A view that bundles the two heavy compute steps into one "compute"
	// composite — unsound, and provenance-visible: the view claims the
	// assembly QC contributed to the published VCF.
	v, err := wolves.ViewFromAssignments(wf, "ops-view", map[string][]string{
		"ingest":  {"fetch", "split"},
		"qcA":     {"qc_asm"},
		"qcB":     {"qc_map"},
		"compute": {"assemble", "map_reads"},
		"postA":   {"bin_contigs", "publish_bins"},
		"postB":   {"call_snps", "publish_vcf"},
		"report":  {"report"},
	})
	if err != nil {
		log.Fatal(err)
	}
	oracle := wolves.NewOracle(wf)
	report := wolves.Validate(oracle, v)
	fmt.Printf("\nops view sound? %v (unsound composites: %d)\n",
		report.Sound, len(report.Unsound))

	audit := wolves.AuditProvenance(engine, v)
	fmt.Printf("view-level lineage audit: %d false pairs, %d of %d queries wrong, precision %.2f\n",
		audit.FalsePairs, audit.WrongQueries, audit.Composites, audit.Precision)

	// The concrete wrong answer: view-level provenance of call_snps
	// includes the assembly lane's QC.
	ve := wolves.NewViewLineageEngine(v)
	fmt.Print("view lineage of call_snps: ")
	for _, t := range ve.TaskLineage(wf.MustIndex("call_snps")) {
		fmt.Printf("%s ", wf.Task(t).ID)
	}
	fmt.Println()

	// The paper's performance motivation: the view closure is far
	// smaller than the workflow closure.
	fmt.Printf("provenance relation size: %d task pairs vs %d composite pairs\n\n",
		engine.ClosurePairs(), ve.ClosurePairs())

	// Correct and re-audit: precision returns to 1.
	fixed, err := wolves.Correct(oracle, v, wolves.Strong, nil)
	if err != nil {
		log.Fatal(err)
	}
	audit2 := wolves.AuditProvenance(engine, fixed.Corrected)
	fmt.Printf("after correction (%d → %d composites): %d false pairs, precision %.2f\n",
		fixed.CompositesBefore, fixed.CompositesAfter, audit2.FalsePairs, audit2.Precision)

	// OPM export of the run (first lines).
	fmt.Println("\n--- OPM trace export (truncated) ---")
	var opm bytes.Buffer
	if err := trace.WriteOPM(&opm); err != nil {
		log.Fatal(err)
	}
	out := opm.String()
	if len(out) > 400 {
		out = out[:400] + "\n..."
	}
	fmt.Println(out)
}
