// Repository audit: reproduce the paper's survey finding ("our survey of
// workflow designs in a well-curated workflow repository revealed
// unsound views") over the simulated repository, then repair every
// unsound view and compare the split-based corrector with the merge-up
// extension.
package main

import (
	"fmt"
	"log"

	"wolves"
)

func main() {
	log.SetFlags(0)
	fmt.Printf("%-22s %-26s %-9s %-28s\n", "WORKFLOW", "VIEW", "STATUS", "CORRECTION (strong | merge-up)")

	totalViews, unsoundViews := 0, 0
	for _, entry := range wolves.Repository() {
		oracle := wolves.NewOracle(entry.Workflow)
		for _, vs := range entry.Views {
			totalViews++
			report := wolves.Validate(oracle, vs.View)
			if report.Sound {
				fmt.Printf("%-22s %-26s %-9s\n", entry.Key, vs.View.Name(), "sound")
				continue
			}
			unsoundViews++

			split, err := wolves.Correct(oracle, vs.View, wolves.Strong, nil)
			if err != nil {
				log.Fatal(err)
			}
			merged, err := wolves.MergeUp(oracle, vs.View)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%-22s %-26s %-9s %d → %d composites | %d → %d composites\n",
				entry.Key, vs.View.Name(), "UNSOUND",
				split.CompositesBefore, split.CompositesAfter,
				merged.CompositesBefore, merged.CompositesAfter)

			// Both corrections must validate clean.
			if !wolves.Validate(oracle, split.Corrected).Sound {
				log.Fatalf("%s: split correction failed", vs.View.Name())
			}
			if !wolves.Validate(oracle, merged.Corrected).Sound {
				log.Fatalf("%s: merge-up correction failed", vs.View.Name())
			}
		}
	}
	fmt.Printf("\nsurvey: %d of %d views unsound — splitting preserves provenance detail;\n"+
		"merge-up always coarsens (the paper's argument for split-based correction)\n",
		unsoundViews, totalViews)
}
