// Phylogenomics: the paper's Figure 1 case study end to end.
//
// The workflow infers protein biological function; the expert view of
// Figure 1(b) bundles "curate annotations" (4) and "create alignment"
// (7) into composite 16, which is unsound: 4 receives external input but
// never reaches 7's output. A user checking the provenance of the
// formatted alignment (composite 18) is then wrongly told that the
// annotation branch (composite 14) contributed to it.
//
// The program detects the problem, shows the wrong provenance answer,
// corrects the view, and writes before/after DOT renderings to stdout
// paths given as arguments (or skips files with none).
package main

import (
	"fmt"
	"log"
	"os"

	"wolves"
)

func main() {
	log.SetFlags(0)
	wf, v := wolves.Figure1()
	oracle := wolves.NewOracle(wf)

	fmt.Println("=== Figure 1(b) view ===")
	if err := wolves.Summary(os.Stdout, oracle, v); err != nil {
		log.Fatal(err)
	}

	// The wrong provenance answer, exactly as §1 describes.
	engine := wolves.NewLineageEngine(wf)
	viewEngine := wolves.NewViewLineageEngine(v)
	c18, _ := v.CompIndex("18")
	fmt.Println("\nprovenance of composite 18's output (view level):")
	for _, ci := range viewEngine.CompositeLineage(c18) {
		fmt.Printf("  composite %s\n", v.Composite(ci).ID)
	}
	t8 := wf.MustIndex("8")
	t3 := wf.MustIndex("3")
	fmt.Printf("\nground truth: does task 3 (in 14) reach task 8 (in 18)? %v\n",
		engine.Reaches(t3, t8))
	audit := wolves.AuditProvenance(engine, v)
	fmt.Printf("audit: %d false provenance pairs, precision %.2f\n\n",
		audit.FalsePairs, audit.Precision)

	// Correct with the strongly local optimal corrector.
	fixed, err := wolves.Correct(oracle, v, wolves.Strong, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("=== corrected view (%d → %d composites) ===\n",
		fixed.CompositesBefore, fixed.CompositesAfter)
	if err := wolves.Summary(os.Stdout, oracle, fixed.Corrected); err != nil {
		log.Fatal(err)
	}
	audit2 := wolves.AuditProvenance(engine, fixed.Corrected)
	fmt.Printf("\naudit after correction: %d false pairs, precision %.2f\n",
		audit2.FalsePairs, audit2.Precision)

	// Optional DOT outputs: phylogenomics <before.dot> <after.dot>.
	if len(os.Args) >= 3 {
		writeDOT(os.Args[1], wf, v, oracle)
		writeDOT(os.Args[2], wf, fixed.Corrected, oracle)
		fmt.Printf("\nwrote %s and %s (render with graphviz)\n", os.Args[1], os.Args[2])
	}
}

func writeDOT(path string, wf *wolves.Workflow, v *wolves.View, oracle *wolves.Oracle) {
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	opts := &wolves.DisplayOptions{Report: wolves.Validate(oracle, v)}
	if err := wolves.WorkflowDOT(f, wf, v, opts); err != nil {
		log.Fatal(err)
	}
}
