// Package wolves is a from-scratch Go implementation of WOLVES
// (WOrkfLow ViEwS), the system demonstrated at VLDB 2009 in "WOLVES:
// Achieving Correct Provenance Analysis by Detecting and Resolving
// Unsound Workflow Views" (Sun, Liu, Natarajan, Davidson, Chen).
//
// A workflow view abstracts groups of tasks into composite tasks. An
// unsound view fails to preserve the dataflow between tasks and silently
// corrupts provenance analysis. This package detects unsound views
// (polynomially, via Definition 2.3 and Proposition 2.1) and repairs
// them by splitting unsound composite tasks under three criteria: weak
// local optimality, strong local optimality (both polynomial), and true
// optimality (exponential; the problem is NP-hard).
//
// # Quick start
//
// The pipeline runs through a long-lived, concurrency-safe Engine. It
// owns an LRU cache of soundness oracles keyed by a workflow fingerprint
// (a hash of the canonical edge list), so repeated requests for the same
// workflow — even decoded independently from JSON — build the expensive
// reachability closure exactly once:
//
//	wf, _ := wolves.NewWorkflowBuilder("demo").
//		AddTask("extract").AddTask("cleanA").AddTask("cleanB").AddTask("load").
//		AddEdge("extract", "cleanA").AddEdge("extract", "cleanB").
//		AddEdge("cleanA", "load").AddEdge("cleanB", "load").
//		Build()
//	v, _ := wolves.ViewFromAssignments(wf, "v", map[string][]string{
//		"in": {"extract"}, "clean": {"cleanA", "cleanB"}, "out": {"load"},
//	})
//	eng := wolves.NewEngine()
//	ctx := context.Background()
//	report, _ := eng.Validate(ctx, wf, v)               // clean is unsound
//	fixed, _ := eng.Correct(ctx, wf, v, wolves.Strong)  // fixed.Corrected is sound
//
// Engines take functional options — WithWorkers (fan-out width),
// WithOracleCache (LRU capacity), WithCorrectorOptions, and
// WithOptimalTimeout — and expose batch entry points (ValidateBatch,
// CorrectBatch) that spread independent jobs over the worker pool.
// cmd/wolvesd serves the same Engine over HTTP.
//
// # Errors and cancellation
//
// Engine methods return *Error values whose Code classifies the failure
// (ErrUnknownTask, ErrOptimalLimit, ErrCanceled, …); errors.Is still
// reaches the wrapped cause. Every method observes ctx. In particular,
// Correct under wolves.Optimal runs an exponential subset DP: the DP
// polls cancellation inside its enumeration loops, so a canceled or
// expired context aborts the correction within milliseconds (bounded
// ~100ms even on 2^20-state instances), returning an ErrCanceled-coded
// error and no partial result. WithOptimalTimeout imposes such a bound
// engine-wide; polynomial criteria (Weak, Strong) are unaffected.
//
// # Compatibility shim
//
// The original free functions (NewOracle, Validate, Correct, SplitTask,
// …) remain as thin deprecated wrappers over a shared default Engine so
// existing callers keep working; new code should construct an Engine.
//
// The deeper machinery (bit-level soundness oracle, correction phases,
// MOML codec, workload generators, the simulated repository, the
// estimator and the feedback loop) lives in internal packages and is
// re-exported here as a stable, documented surface.
package wolves

import (
	"context"
	"io"
	"sync"

	"wolves/internal/core"
	"wolves/internal/display"
	"wolves/internal/engine"
	"wolves/internal/estimate"
	"wolves/internal/feedback"
	"wolves/internal/gen"
	"wolves/internal/moml"
	"wolves/internal/provenance"
	"wolves/internal/repo"
	"wolves/internal/runs"
	"wolves/internal/soundness"
	"wolves/internal/view"
	"wolves/internal/workflow"
)

// --- engine -------------------------------------------------------------------

// Engine is the long-lived service facade: a concurrency-safe pipeline
// object owning a fingerprint-keyed LRU cache of soundness oracles. See
// the package documentation for the serving model.
type Engine = engine.Engine

// EngineOption configures an Engine at construction time.
type EngineOption = engine.Option

// Batch job and result types of Engine.ValidateBatch / Engine.CorrectBatch.
type (
	// ValidateJob is one unit of Engine.ValidateBatch work.
	ValidateJob = engine.ValidateJob
	// ValidateResult pairs a batch job's report with its typed error.
	ValidateResult = engine.ValidateResult
	// CorrectJob is one unit of Engine.CorrectBatch work.
	CorrectJob = engine.CorrectJob
	// CorrectResult pairs a batch job's correction with its typed error.
	CorrectResult = engine.CorrectResult
	// EngineCacheStats snapshots the oracle cache counters.
	EngineCacheStats = engine.CacheStats
)

// NewEngine constructs an Engine.
func NewEngine(opts ...EngineOption) *Engine { return engine.New(opts...) }

// Functional options for NewEngine.
var (
	// WithWorkers sets the fan-out width (0 = GOMAXPROCS).
	WithWorkers = engine.WithWorkers
	// WithOracleCache sets the oracle LRU capacity (0 disables caching).
	WithOracleCache = engine.WithOracleCache
	// WithCorrectorOptions sets default corrector options.
	WithCorrectorOptions = engine.WithCorrectorOptions
	// WithOptimalTimeout bounds every Optimal correction.
	WithOptimalTimeout = engine.WithOptimalTimeout
)

// Error is the structured error returned by every Engine method.
type Error = engine.Error

// ErrorCode classifies an Error for programmatic handling.
type ErrorCode = engine.Code

// Error codes carried by *Error.
const (
	ErrBadInput         = engine.ErrBadInput
	ErrUnknownTask      = engine.ErrUnknownTask
	ErrUnknownComposite = engine.ErrUnknownComposite
	ErrWorkflowMismatch = engine.ErrWorkflowMismatch
	ErrOptimalLimit     = engine.ErrOptimalLimit
	ErrCanceled         = engine.ErrCanceled
	ErrUnknownWorkflow  = engine.ErrUnknownWorkflow
	ErrUnknownView      = engine.ErrUnknownView
	ErrVersionConflict  = engine.ErrVersionConflict
	ErrCycleRejected    = engine.ErrCycleRejected
	ErrInvalidTrace     = engine.ErrInvalidTrace
	ErrUnknownRun       = engine.ErrUnknownRun
	ErrUnknownArtifact  = engine.ErrUnknownArtifact
	ErrInternal         = engine.ErrInternal
)

// Live workflow registry: named, versioned, mutable workflows whose
// attached views are revalidated incrementally on every mutation batch.
// See internal/engine's package documentation for versioning,
// concurrency and eviction semantics.
type (
	// Registry is a concurrency-safe store of named live workflows.
	Registry = engine.Registry
	// LiveWorkflow is one named, versioned, mutable workflow.
	LiveWorkflow = engine.LiveWorkflow
	// WorkflowMutation is a batch of task and edge additions.
	WorkflowMutation = engine.Mutation
	// MutationResult summarizes one applied mutation batch.
	MutationResult = engine.MutationResult
	// ViewDelta describes how one attached view absorbed a mutation.
	ViewDelta = engine.ViewDelta
	// LiveWorkflowInfo is a metadata snapshot of a live workflow.
	LiveWorkflowInfo = engine.WorkflowInfo
	// LineageResult contrasts view-level with exact task-level lineage.
	LineageResult = engine.LineageResult
	// RegistryOption configures a Registry at construction time.
	RegistryOption = engine.RegistryOption
	// Journal receives every committed registry transition; the durable
	// implementation (write-ahead log + snapshots + crash recovery)
	// lives in internal/storage and backs wolvesd's -data-dir flag.
	Journal = engine.Journal
	// LiveState is the read-consistent snapshot description handed to a
	// Journal and to LiveWorkflow.State callbacks.
	LiveState = engine.LiveState
	// AppliedBatch is the committed portion of a mutation batch.
	AppliedBatch = engine.AppliedBatch
	// RestoredView names one view to re-attach during recovery.
	RestoredView = engine.RestoredView
)

// NewRegistry constructs a live workflow registry backed by eng.
func NewRegistry(eng *Engine, opts ...RegistryOption) *Registry {
	return engine.NewRegistry(eng, opts...)
}

// WithRegistryCapacity bounds the number of live workflows (LRU-evicted
// beyond it).
var WithRegistryCapacity = engine.WithRegistryCapacity

// WithJournal installs a journal at registry construction; see Journal.
var WithJournal = engine.WithJournal

// Run store: a concurrent, multi-run provenance store layered on the
// registry. Ingest OPM-style execution traces (JSON or NDJSON) against
// a registered workflow, then query lineage / descendants /
// why-provenance at three levels — exact (task closure), view
// (composite closure) and audited (view answer plus the soundness
// delta: a sound flag and the exact spurious/missing composites). See
// internal/runs for the full semantics; wolvesd serves the same store
// under /v1/workflows/{id}/runs.
type (
	// RunStore is the multi-run provenance store.
	RunStore = runs.Store
	// RunStoreOption configures a RunStore at construction time.
	RunStoreOption = runs.Option
	// RunInfo is the metadata of one ingested run.
	RunInfo = runs.RunInfo
	// RunQuery is one lineage question against an ingested run.
	RunQuery = runs.Query
	// RunLineage is the answer to a RunQuery.
	RunLineage = runs.Answer
	// RunBatchResult is the per-query outcome of batched lineage.
	RunBatchResult = runs.BatchResult
	// RunStoreStats is the run store's counter snapshot (/v1/stats).
	RunStoreStats = runs.Stats
	// RunJournal persists ingested runs; internal/storage implements it
	// next to the registry Journal.
	RunJournal = runs.Journal
	// ProvSession is a read-locked provenance query session over a live
	// workflow (LiveWorkflow.Query).
	ProvSession = engine.ProvSession
)

// NewRunStore constructs a run store over reg.
func NewRunStore(reg *Registry, opts ...RunStoreOption) *RunStore {
	return runs.New(reg, opts...)
}

// WithRunJournal installs the durability journal on a run store at
// construction.
var WithRunJournal = runs.WithJournal

// defaultEngine backs the deprecated free-function layer.
var (
	defaultEngineOnce sync.Once
	defaultEngineVal  *Engine
)

// DefaultEngine returns the process-wide Engine behind the deprecated
// free functions. Prefer constructing your own with NewEngine.
func DefaultEngine() *Engine {
	defaultEngineOnce.Do(func() { defaultEngineVal = engine.New() })
	return defaultEngineVal
}

// --- workflow model ---------------------------------------------------------

// Workflow is an immutable workflow specification (a DAG of tasks).
type Workflow = workflow.Workflow

// Task is an atomic workflow task.
type Task = workflow.Task

// WorkflowBuilder accumulates tasks and edges and validates on Build.
type WorkflowBuilder = workflow.Builder

// NewWorkflowBuilder starts a workflow specification.
func NewWorkflowBuilder(name string) *WorkflowBuilder { return workflow.NewBuilder(name) }

// DecodeWorkflowJSON reads a workflow from its JSON format.
func DecodeWorkflowJSON(r io.Reader) (*Workflow, error) { return workflow.DecodeJSON(r) }

// --- view model ---------------------------------------------------------------

// View is an immutable partition of a workflow's tasks into composites.
type View = view.View

// Composite is a composite task of a view.
type Composite = view.Composite

// ViewBuilder accumulates composite assignments.
type ViewBuilder = view.Builder

// NewViewBuilder starts a view over wf.
func NewViewBuilder(wf *Workflow, name string) *ViewBuilder { return view.NewBuilder(wf, name) }

// ViewFromAssignments builds a view from a composite→tasks map.
func ViewFromAssignments(wf *Workflow, name string, assign map[string][]string) (*View, error) {
	return view.FromAssignments(wf, name, assign)
}

// AtomicView returns the identity view (one composite per task).
func AtomicView(wf *Workflow) *View { return view.Atomic(wf) }

// DecodeViewJSON reads a view over wf from its JSON format.
func DecodeViewJSON(wf *Workflow, r io.Reader) (*View, error) { return view.DecodeJSON(wf, r) }

// --- validation ---------------------------------------------------------------

// Oracle answers soundness queries for one workflow (it owns the
// reachability closure). Build one per workflow and reuse it.
type Oracle = soundness.Oracle

// Report is a full view validation result with per-composite witnesses.
type Report = soundness.Report

// Violation witnesses unsoundness: an in-node that cannot reach an out-node.
type Violation = soundness.Violation

// PathReport is the direct Definition-2.1 diagnosis.
type PathReport = soundness.PathReport

// NewOracle builds the soundness oracle for wf.
//
// Deprecated: Engine.Oracle caches oracles by workflow fingerprint;
// building one directly bypasses the cache.
func NewOracle(wf *Workflow) *Oracle { return soundness.NewOracle(wf) }

// Validate checks every composite of v (Proposition 2.1) with witnesses.
//
// Deprecated: use Engine.Validate, which is context-aware and reuses
// cached oracles. This wrapper routes through the default Engine.
func Validate(o *Oracle, v *View) *Report {
	rep, err := DefaultEngine().ValidateWithOracle(context.Background(), o, v) //lint:allow ctxpass deprecated compat wrapper anchors its own root
	if err != nil {
		// Matches the historical contract: a foreign view panics.
		panic(err)
	}
	return rep
}

// ValidateParallel is Validate with composites fanned out over a worker
// pool (runtime.GOMAXPROCS workers when workers <= 0). The report is
// identical to the sequential one.
//
// Deprecated: use Engine.Validate with WithWorkers.
func ValidateParallel(o *Oracle, v *View, workers int) *Report {
	return soundness.ValidateViewParallel(o, v, workers)
}

// ValidatePaths applies Definition 2.1 literally at the view level.
func ValidatePaths(o *Oracle, v *View) *PathReport { return soundness.ValidateViewPaths(o, v) }

// DescribeViolation renders a violation with task IDs.
func DescribeViolation(wf *Workflow, viol Violation) string {
	return soundness.DescribeViolation(wf, viol)
}

// --- correction ---------------------------------------------------------------

// Criterion selects a correction algorithm.
type Criterion = core.Criterion

// Correction criteria (see the paper, Definitions 2.5 and 2.6).
const (
	Weak          = core.Weak
	Strong        = core.Strong
	StrongAudited = core.StrongAudited
	Optimal       = core.Optimal
)

// CorrectorOptions tunes the correctors.
type CorrectorOptions = core.Options

// SplitResult is the outcome of splitting one composite.
type SplitResult = core.Result

// ViewCorrection is the outcome of correcting a whole view.
type ViewCorrection = core.ViewCorrection

// MergeUpResult is the outcome of the merge-based corrector extension.
type MergeUpResult = core.MergeUpResult

// ParseCriterion maps CLI names (weak|strong|strong-audited|optimal).
func ParseCriterion(s string) (Criterion, error) { return core.ParseCriterion(s) }

// SplitTask splits one composite's member set into sound blocks.
//
// Deprecated: use Engine.SplitTask, which is context-aware. This
// wrapper routes through the default Engine.
func SplitTask(o *Oracle, members []int, crit Criterion, opts *CorrectorOptions) (*SplitResult, error) {
	return DefaultEngine().SplitWithOracle(context.Background(), o, members, crit, opts) //lint:allow ctxpass deprecated compat wrapper anchors its own root
}

// Correct repairs every unsound composite of v; the result is sound.
//
// Deprecated: use Engine.Correct, which is context-aware (under
// wolves.Optimal a canceled ctx aborts the exponential DP promptly) and
// reuses cached oracles. This wrapper routes through the default Engine.
func Correct(o *Oracle, v *View, crit Criterion, opts *CorrectorOptions) (*ViewCorrection, error) {
	return DefaultEngine().CorrectWithOracle(context.Background(), o, v, crit, opts) //lint:allow ctxpass deprecated compat wrapper anchors its own root
}

// MergeUp repairs an unsound view by merging composites instead of
// splitting them — the paper's stated open problem, as an extension.
func MergeUp(o *Oracle, v *View) (*MergeUpResult, error) { return core.MergeUp(o, v) }

// Advisor answers view-design-time soundness questions (the demo's
// "suggestions while users are creating a view").
type Advisor = core.Advisor

// NewAdvisor wraps an oracle for interactive view design.
func NewAdvisor(o *Oracle) *Advisor { return core.NewAdvisor(o) }

// Compact greedily merges composite pairs whose union stays sound —
// the split/merge interaction the paper names as an open problem.
func Compact(o *Oracle, v *View, maxMerges int) (*View, int, error) {
	return core.Compact(o, v, maxMerges)
}

// WeakOptimal audits Definition 2.5 on a block list.
func WeakOptimal(o *Oracle, blocks [][]int) (bool, [2]int) { return core.WeakOptimal(o, blocks) }

// StrongOptimal audits Definition 2.6 exhaustively (up to limit blocks).
func StrongOptimal(o *Oracle, blocks [][]int, limit int) (bool, []int, bool) {
	return core.StrongOptimal(o, blocks, limit)
}

// Quality is the paper's quality ratio: optimal blocks / produced blocks.
func Quality(optimalBlocks, algBlocks int) float64 { return core.Quality(optimalBlocks, algBlocks) }

// --- provenance ---------------------------------------------------------------

// LineageEngine answers task-level provenance queries.
type LineageEngine = provenance.Engine

// ViewLineageEngine answers view-level provenance queries.
type ViewLineageEngine = provenance.ViewEngine

// ProvenanceAudit quantifies the provenance error a view induces.
type ProvenanceAudit = provenance.ViewAudit

// Trace is one simulated workflow execution (an OPM-style graph).
type Trace = provenance.Trace

// NewLineageEngine builds the workflow-level engine.
func NewLineageEngine(wf *Workflow) *LineageEngine { return provenance.NewEngine(wf) }

// NewViewLineageEngine builds the view-level engine.
func NewViewLineageEngine(v *View) *ViewLineageEngine { return provenance.NewViewEngine(v) }

// AuditProvenance compares view-level lineage answers with ground truth.
func AuditProvenance(e *LineageEngine, v *View) *ProvenanceAudit {
	return provenance.AuditView(e, v)
}

// Execute simulates one run of wf, producing a provenance trace.
func Execute(wf *Workflow, runID string) *Trace { return provenance.Execute(wf, runID) }

// --- MOML ---------------------------------------------------------------------

// MOMLDocument is a decoded MOML file: a workflow plus an optional view.
type MOMLDocument = moml.Document

// DecodeMOML parses a MOML document (Ptolemy/Kepler XML subset).
func DecodeMOML(r io.Reader) (*MOMLDocument, error) { return moml.Decode(r) }

// EncodeMOML writes wf (and optionally v) as MOML.
func EncodeMOML(w io.Writer, wf *Workflow, v *View) error { return moml.Encode(w, wf, v) }

// --- sessions (feedback loop) ---------------------------------------------------

// Session drives the validate → correct → user-feedback loop. Sessions
// run every operation through an Engine.
type Session = feedback.Session

// NewSession starts an interactive correction session on v with a
// private single-workflow Engine.
func NewSession(wf *Workflow, v *View) (*Session, error) { return feedback.NewSession(wf, v) }

// NewSessionWith starts a session backed by eng, sharing its oracle
// cache with every other consumer of that Engine.
func NewSessionWith(eng *Engine, wf *Workflow, v *View) (*Session, error) {
	return feedback.NewSessionWith(eng, wf, v)
}

// --- estimator -------------------------------------------------------------------

// Estimator predicts correction time and quality from history (§3.2).
type Estimator = estimate.Estimator

// EstimatorPrediction is one estimator answer.
type EstimatorPrediction = estimate.Prediction

// NewEstimator returns an empty estimator.
func NewEstimator() *Estimator { return estimate.New() }

// --- display ---------------------------------------------------------------------

// DisplayOptions tunes DOT/text rendering.
type DisplayOptions = display.Options

// WorkflowDOT renders the workflow (optionally clustered by a view) as DOT.
func WorkflowDOT(w io.Writer, wf *Workflow, v *View, opts *DisplayOptions) error {
	return display.WorkflowDOT(w, wf, v, opts)
}

// ViewDOT renders the view graph as DOT.
func ViewDOT(w io.Writer, v *View, opts *DisplayOptions) error {
	return display.ViewDOT(w, v, opts)
}

// Summary writes the per-composite text diagnosis.
func Summary(w io.Writer, o *Oracle, v *View) error { return display.Summary(w, o, v) }

// Dependencies renders the demo's "Show Dependency" answer for a task.
func Dependencies(w io.Writer, e *LineageEngine, taskID string) error {
	return display.Dependencies(w, e, taskID)
}

// --- repository and generators ------------------------------------------------------

// RepoEntry is one workflow of the simulated repository.
type RepoEntry = repo.Entry

// RepoViewSpec pairs a repository view with its expected diagnosis.
type RepoViewSpec = repo.ViewSpec

// Repository returns the simulated workflow repository (Kepler /
// myExperiment stand-in), including the paper's Figure 1 and Figure 3.
func Repository() []*RepoEntry { return repo.Catalog() }

// RepositoryGet returns one repository entry by key.
func RepositoryGet(key string) (*RepoEntry, error) { return repo.Get(key) }

// Figure1 returns the paper's phylogenomics workflow and unsound view.
func Figure1() (*Workflow, *View) { return repo.Figure1() }

// Fig3 bundles the reconstructed Figure 3 running example.
type Fig3 = repo.Fig3

// Figure3 returns the paper's running example.
func Figure3() *Fig3 { return repo.Figure3() }

// Generator configs, re-exported for workload construction.
type (
	// LayeredConfig parameterizes gen.Layered.
	LayeredConfig = gen.LayeredConfig
	// SPConfig parameterizes gen.SeriesParallel.
	SPConfig = gen.SPConfig
	// PipelineConfig parameterizes gen.ScientificPipeline.
	PipelineConfig = gen.PipelineConfig
)

// GenLayered builds a layered random workflow.
func GenLayered(cfg LayeredConfig) *Workflow { return gen.Layered(cfg) }

// GenSeriesParallel builds a series-parallel workflow.
func GenSeriesParallel(cfg SPConfig) *Workflow { return gen.SeriesParallel(cfg) }

// GenScientificPipeline builds a Kepler-style pipeline workflow.
func GenScientificPipeline(cfg PipelineConfig) *Workflow { return gen.ScientificPipeline(cfg) }

// GenIntervalView partitions wf into k topological bands.
func GenIntervalView(wf *Workflow, k int, name string) *View { return gen.IntervalView(wf, k, name) }

// GenRandomView assigns tasks to k composites at random.
func GenRandomView(wf *Workflow, k int, seed int64, name string) *View {
	return gen.RandomView(wf, k, seed, name)
}

// GenModuleView groups tasks by Kind.
func GenModuleView(wf *Workflow, name string) *View { return gen.ModuleView(wf, name) }

// GenBitonStyleView emulates automatic user-view construction [2].
func GenBitonStyleView(wf *Workflow, relevant []string, name string) (*View, error) {
	return gen.BitonStyleView(wf, relevant, name)
}

// GenUnsoundTask generates a workflow embedding one guaranteed-unsound
// composite of exactly n members (the corrector-benchmark family).
func GenUnsoundTask(n int, seed int64) (*Workflow, []int) { return gen.UnsoundTask(n, seed) }

// GenBicliqueTask generalizes the paper's Figure 3 instance to a k×k
// biclique: the weak corrector stalls at 2k+4 blocks while the strong
// corrector reaches 5. Returns the workflow and the composite members.
func GenBicliqueTask(k int) (*Workflow, []int) { return gen.BicliqueTask(k) }
