// Benchmarks mapping one-to-one onto the experiment index of DESIGN.md
// §3 (E1–E9, A1–A2; the A3 reachability ablation lives in internal/dag).
// Run with:
//
//	go test -bench=. -benchmem
//
// The wolvestables command prints the corresponding tables with derived
// quantities (quality ratios, speedups); EXPERIMENTS.md records both.
package wolves_test

import (
	"fmt"
	"testing"

	"wolves"
	"wolves/internal/core"
	"wolves/internal/soundness"
)

// --- E1: Figure 1 case study -------------------------------------------------

func BenchmarkE1Figure1Validate(b *testing.B) {
	wf, v := wolves.Figure1()
	o := wolves.NewOracle(wf)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if wolves.Validate(o, v).Sound {
			b.Fatal("fig1 view must be unsound")
		}
	}
}

func BenchmarkE1Figure1Correct(b *testing.B) {
	wf, v := wolves.Figure1()
	o := wolves.NewOracle(wf)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := wolves.Correct(o, v, wolves.Strong, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E2: Figure 3 running example ---------------------------------------------

func BenchmarkE2Figure3(b *testing.B) {
	f := wolves.Figure3()
	o := wolves.NewOracle(f.Workflow)
	for _, crit := range []wolves.Criterion{wolves.Weak, wolves.Strong, wolves.Optimal} {
		b.Run(crit.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := wolves.SplitTask(o, f.T, crit, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- E3/E4: corrector sweep with optimal --------------------------------------

func BenchmarkE4Corrector(b *testing.B) {
	for _, n := range []int{8, 12, 16} {
		wf, members := wolves.GenUnsoundTask(n, 1)
		o := wolves.NewOracle(wf)
		for _, crit := range []wolves.Criterion{wolves.Weak, wolves.Strong, wolves.Optimal} {
			b.Run(fmt.Sprintf("%s/n=%d", crit, n), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := wolves.SplitTask(o, members, crit, nil); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// --- E5: weak vs strong at scale ------------------------------------------------

func BenchmarkE5CorrectorLarge(b *testing.B) {
	for _, n := range []int{64, 128, 256} {
		wf, members := wolves.GenUnsoundTask(n, 1)
		o := wolves.NewOracle(wf)
		for _, crit := range []wolves.Criterion{wolves.Weak, wolves.Strong} {
			b.Run(fmt.Sprintf("%s/n=%d", crit, n), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := wolves.SplitTask(o, members, crit, nil); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// --- E6: validator vs naive strawman ---------------------------------------------

func BenchmarkE6Validator(b *testing.B) {
	for _, n := range []int{16, 32} {
		wf := wolves.GenLayered(wolves.LayeredConfig{
			Name: "v", Tasks: n, Layers: n / 4, EdgeProb: 0.5, SkipProb: 0.1, Seed: 5,
		})
		o := wolves.NewOracle(wf)
		v := wolves.GenIntervalView(wf, n/4, "bands")
		b.Run(fmt.Sprintf("task-level/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				wolves.Validate(o, v)
			}
		})
		b.Run(fmt.Sprintf("def21-paths/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				wolves.ValidatePaths(o, v)
			}
		})
		b.Run(fmt.Sprintf("naive-enum/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				nv := soundness.NewNaiveValidator(o, 100_000_000)
				if _, err := nv.ValidateView(v); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- E7: provenance at workflow vs view level --------------------------------------

func BenchmarkE7Lineage(b *testing.B) {
	for _, n := range []int{256, 1024} {
		wf := wolves.GenLayered(wolves.LayeredConfig{
			Name: "p", Tasks: n, Layers: n / 8, EdgeProb: 0.3, SkipProb: 0.02, Seed: 3,
		})
		v := wolves.GenIntervalView(wf, n/16, "bands")
		b.Run(fmt.Sprintf("workflow/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				e := wolves.NewLineageEngine(wf)
				e.Lineage(n - 1)
			}
		})
		b.Run(fmt.Sprintf("view/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ve := wolves.NewViewLineageEngine(v)
				ve.CompositeLineage(v.N() - 1)
			}
		})
	}
}

// --- E8: repository survey ----------------------------------------------------------

func BenchmarkE8RepositoryAudit(b *testing.B) {
	for i := 0; i < b.N; i++ {
		unsound := 0
		for _, e := range wolves.Repository() {
			o := wolves.NewOracle(e.Workflow)
			for _, vs := range e.Views {
				if !wolves.Validate(o, vs.View).Sound {
					unsound++
				}
			}
		}
		if unsound == 0 {
			b.Fatal("survey must find unsound views")
		}
	}
}

// --- E9: estimator ---------------------------------------------------------------------

func BenchmarkE9EstimatorPredict(b *testing.B) {
	est := wolves.NewEstimator()
	for seed := int64(0); seed < 8; seed++ {
		est.Record(12, 14, "strong-local-optimal", 1000, 0.95)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := est.Predict(12, 14, "strong-local-optimal"); !ok {
			b.Fatal("prediction must hit")
		}
	}
}

// --- A1: strong corrector phase ablation ---------------------------------------------------

func BenchmarkA1StrongPhases(b *testing.B) {
	wf, members := wolves.GenUnsoundTask(14, 1)
	o := wolves.NewOracle(wf)
	b.Run("pairs-only", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.SplitTaskPhases(o, members, false, false); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("with-closures", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.SplitTaskPhases(o, members, true, false); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("full-strong", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.SplitTaskPhases(o, members, true, true); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- A2: split vs merge-up correction -------------------------------------------------------

func BenchmarkA2SplitVsMergeUp(b *testing.B) {
	entry, err := wolves.RepositoryGet("climate-ensemble")
	if err != nil {
		b.Fatal(err)
	}
	var unsound *wolves.View
	o := wolves.NewOracle(entry.Workflow)
	for _, vs := range entry.Views {
		if !vs.WantSound {
			unsound = vs.View
		}
	}
	b.Run("split-strong", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := wolves.Correct(o, unsound, wolves.Strong, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("merge-up", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := wolves.MergeUp(o, unsound); err != nil {
				b.Fatal(err)
			}
		}
	})
}
