package wolves_test

import (
	"bytes"
	"strings"
	"testing"

	"wolves"
)

// TestFacadeQuickstart runs the package-doc quick start end to end; if
// this breaks, the README is lying.
func TestFacadeQuickstart(t *testing.T) {
	wf, err := wolves.NewWorkflowBuilder("demo").
		AddTask("extract").AddTask("cleanA").AddTask("cleanB").AddTask("load").
		AddEdge("extract", "cleanA").AddEdge("extract", "cleanB").
		AddEdge("cleanA", "load").AddEdge("cleanB", "load").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	v, err := wolves.ViewFromAssignments(wf, "v", map[string][]string{
		"in": {"extract"}, "clean": {"cleanA", "cleanB"}, "out": {"load"},
	})
	if err != nil {
		t.Fatal(err)
	}
	oracle := wolves.NewOracle(wf)
	report := wolves.Validate(oracle, v)
	if report.Sound {
		t.Fatal("the clean composite must be unsound")
	}
	fixed, err := wolves.Correct(oracle, v, wolves.Strong, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !wolves.Validate(oracle, fixed.Corrected).Sound {
		t.Fatal("corrected view must be sound")
	}
	if fixed.Corrected.N() != 4 {
		t.Fatalf("composites = %d, want 4", fixed.Corrected.N())
	}
}

func TestFacadeRepositoryAndFigures(t *testing.T) {
	if len(wolves.Repository()) != 10 {
		t.Fatal("repository size changed")
	}
	if _, err := wolves.RepositoryGet("phylogenomics"); err != nil {
		t.Fatal(err)
	}
	wf, v := wolves.Figure1()
	if wf.N() != 12 || v.N() != 7 {
		t.Fatal("figure 1 shape wrong")
	}
	f3 := wolves.Figure3()
	if len(f3.T) != 12 {
		t.Fatal("figure 3 shape wrong")
	}
}

func TestFacadeMOMLAndDisplay(t *testing.T) {
	wf, v := wolves.Figure1()
	var buf bytes.Buffer
	if err := wolves.EncodeMOML(&buf, wf, v); err != nil {
		t.Fatal(err)
	}
	doc, err := wolves.DecodeMOML(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if doc.View == nil {
		t.Fatal("view lost in MOML round trip")
	}
	var dot bytes.Buffer
	o := wolves.NewOracle(wf)
	if err := wolves.WorkflowDOT(&dot, wf, v, &wolves.DisplayOptions{Report: wolves.Validate(o, v)}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(dot.String(), "cluster_16") {
		t.Fatal("DOT missing clusters")
	}
}

func TestFacadeLineageAndSession(t *testing.T) {
	wf, v := wolves.Figure1()
	e := wolves.NewLineageEngine(wf)
	audit := wolves.AuditProvenance(e, v)
	if audit.FalsePairs == 0 {
		t.Fatal("unsound view must produce false provenance pairs")
	}
	s, err := wolves.NewSession(wf, v)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Correct(wolves.Optimal, nil); err != nil {
		t.Fatal(err)
	}
	if !s.Validate().Sound {
		t.Fatal("session correction failed")
	}
	tr := wolves.Execute(wf, "r1")
	if len(tr.Artifacts()) != wf.N() {
		t.Fatal("trace shape wrong")
	}
}

func TestFacadeValidatePathsAndCodecs(t *testing.T) {
	wf, v := wolves.Figure1()
	o := wolves.NewOracle(wf)
	prep := wolves.ValidatePaths(o, v)
	if prep.Sound || len(prep.FalsePaths) == 0 {
		t.Fatalf("path report = %+v", prep)
	}
	av := wolves.AtomicView(wf)
	if av.N() != wf.N() {
		t.Fatal("atomic view wrong")
	}
	var wfJSON, vJSON bytes.Buffer
	if err := wf.EncodeJSON(&wfJSON); err != nil {
		t.Fatal(err)
	}
	if err := v.EncodeJSON(&vJSON); err != nil {
		t.Fatal(err)
	}
	wf2, err := wolves.DecodeWorkflowJSON(&wfJSON)
	if err != nil || wf2.N() != wf.N() {
		t.Fatalf("workflow codec: %v", err)
	}
	if _, err := wolves.DecodeViewJSON(wf2, &vJSON); err != nil {
		t.Fatalf("view codec: %v", err)
	}
	vb, err := wolves.NewViewBuilder(wf, "vb").Assign("all", wf.IDs()...).Build()
	if err != nil || vb.N() != 1 {
		t.Fatalf("view builder: %v", err)
	}
}

func TestFacadeCorrectionExtensions(t *testing.T) {
	wf, v := wolves.Figure1()
	o := wolves.NewOracle(wf)
	mu, err := wolves.MergeUp(o, v)
	if err != nil || !wolves.Validate(o, mu.Corrected).Sound {
		t.Fatalf("merge-up: %v", err)
	}
	fixed, err := wolves.Correct(o, v, wolves.StrongAudited, nil)
	if err != nil {
		t.Fatal(err)
	}
	compacted, merges, err := wolves.Compact(o, fixed.Corrected, 2)
	if err != nil || merges > 2 {
		t.Fatalf("compact: %v merges=%d", err, merges)
	}
	if !wolves.Validate(o, compacted).Sound {
		t.Fatal("compacted view unsound")
	}
	// Auditors on a known split.
	f3 := wolves.Figure3()
	o3 := wolves.NewOracle(f3.Workflow)
	strong, err := wolves.SplitTask(o3, f3.T, wolves.Strong, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ok, pair := wolves.WeakOptimal(o3, strong.Blocks); !ok {
		t.Fatalf("weak audit failed: %v", pair)
	}
	if ok, witness, complete := wolves.StrongOptimal(o3, strong.Blocks, 22); !complete || !ok {
		t.Fatalf("strong audit failed: %v %v", witness, complete)
	}
	var buf bytes.Buffer
	if err := wolves.Summary(&buf, o3, f3.View); err != nil {
		t.Fatal(err)
	}
	if err := wolves.ViewDOT(&buf, f3.View, nil); err != nil {
		t.Fatal(err)
	}
	e := wolves.NewLineageEngine(f3.Workflow)
	if err := wolves.Dependencies(&buf, e, "c"); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeMoreGenerators(t *testing.T) {
	sp := wolves.GenSeriesParallel(wolves.SPConfig{Name: "sp", Depth: 2, MaxBranch: 3, Seed: 1})
	if sp.N() < 4 {
		t.Fatal("series-parallel too small")
	}
	lay := wolves.GenLayered(wolves.LayeredConfig{Name: "l", Tasks: 20, Layers: 4, EdgeProb: 0.4, Seed: 2})
	rv := wolves.GenRandomView(lay, 5, 3, "rv")
	iv := wolves.GenIntervalView(lay, 5, "iv")
	if rv.N() != 5 || iv.N() != 5 {
		t.Fatal("view generators wrong")
	}
	if _, err := wolves.GenBitonStyleView(lay, []string{"t3"}, "bv"); err != nil {
		t.Fatal(err)
	}
	wfB, members := wolves.GenBicliqueTask(3)
	oB := wolves.NewOracle(wfB)
	if ok, _ := oB.SoundSlice(members); ok {
		t.Fatal("biclique composite must be unsound")
	}
}

func TestFacadeGenerators(t *testing.T) {
	wf := wolves.GenScientificPipeline(wolves.PipelineConfig{
		Name: "p", Branches: 2, ChainLen: 2, SideChains: 1, SideChainLen: 2,
	})
	if wf.N() == 0 {
		t.Fatal("empty pipeline")
	}
	mv := wolves.GenModuleView(wf, "m")
	if mv.N() == 0 {
		t.Fatal("empty module view")
	}
	w2, members := wolves.GenUnsoundTask(12, 1)
	o := wolves.NewOracle(w2)
	res, err := wolves.SplitTask(o, members, wolves.Weak, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Blocks) < 2 {
		t.Fatal("unsound task must split into multiple blocks")
	}
	if q := wolves.Quality(5, 8); q != 0.625 {
		t.Fatalf("quality = %f", q)
	}
	if _, err := wolves.ParseCriterion("strong"); err != nil {
		t.Fatal(err)
	}
}
