package wolves_test

import (
	"fmt"

	"wolves"
)

// The Figure 1 case study in four lines: load, validate, read the
// witness, correct.
func ExampleValidate() {
	wf, v := wolves.Figure1()
	oracle := wolves.NewOracle(wf)
	report := wolves.Validate(oracle, v)
	fmt.Println("sound:", report.Sound)
	for _, ci := range report.Unsound {
		cr := report.Composites[ci]
		fmt.Printf("composite %s: %s\n", cr.ID,
			wolves.DescribeViolation(wf, cr.Violations[0]))
	}
	// Output:
	// sound: false
	// composite 16: 4 ∈ T.in cannot reach 7 ∈ T.out
}

func ExampleCorrect() {
	wf, v := wolves.Figure1()
	oracle := wolves.NewOracle(wf)
	fixed, _ := wolves.Correct(oracle, v, wolves.Strong, nil)
	fmt.Println("composites:", fixed.CompositesBefore, "→", fixed.CompositesAfter)
	fmt.Println("sound now:", wolves.Validate(oracle, fixed.Corrected).Sound)
	// Output:
	// composites: 7 → 8
	// sound now: true
}

// The Figure 3 running example: the weak corrector stalls at 8 blocks,
// the strong corrector reaches 5.
func ExampleSplitTask() {
	f := wolves.Figure3()
	oracle := wolves.NewOracle(f.Workflow)
	weak, _ := wolves.SplitTask(oracle, f.T, wolves.Weak, nil)
	strong, _ := wolves.SplitTask(oracle, f.T, wolves.Strong, nil)
	fmt.Println("weak blocks:", len(weak.Blocks))
	fmt.Println("strong blocks:", len(strong.Blocks))
	// Output:
	// weak blocks: 8
	// strong blocks: 5
}

// Unsound views corrupt provenance: the audit counts the spurious
// dependency pairs a view invents.
func ExampleAuditProvenance() {
	wf, v := wolves.Figure1()
	engine := wolves.NewLineageEngine(wf)
	audit := wolves.AuditProvenance(engine, v)
	fmt.Println("false pairs:", audit.FalsePairs)
	fmt.Println("missing pairs:", audit.MissingPairs)
	// Output:
	// false pairs: 2
	// missing pairs: 0
}

// The design-time advisor: which tasks can safely join a draft composite?
func ExampleAdvisor() {
	wf, _ := wolves.Figure1()
	oracle := wolves.NewOracle(wf)
	advisor := wolves.NewAdvisor(oracle)
	draft := []int{wf.MustIndex("4")}
	fmt.Println("can add 5:", advisor.CanAdd(draft, wf.MustIndex("5")))
	fmt.Println("can add 7:", advisor.CanAdd(draft, wf.MustIndex("7")))
	// Output:
	// can add 5: true
	// can add 7: false
}
