package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"

	"wolves/internal/core"
	"wolves/internal/display"
	"wolves/internal/estimate"
	"wolves/internal/feedback"
	"wolves/internal/gen"
	"wolves/internal/moml"
	"wolves/internal/provenance"
	"wolves/internal/repo"
	"wolves/internal/soundness"
	"wolves/internal/view"
	"wolves/internal/workflow"
)

// loadInputs reads a workflow (+ optional view) from MOML or JSON files.
func loadInputs(momlPath, wfPath, viewPath string) (*workflow.Workflow, *view.View, error) {
	switch {
	case momlPath != "" && wfPath != "":
		return nil, nil, errors.New("give either -moml or -workflow, not both")
	case momlPath != "":
		f, err := os.Open(momlPath)
		if err != nil {
			return nil, nil, err
		}
		defer f.Close()
		doc, err := moml.Decode(f)
		if err != nil {
			return nil, nil, err
		}
		return doc.Workflow, doc.View, nil
	case wfPath != "":
		f, err := os.Open(wfPath)
		if err != nil {
			return nil, nil, err
		}
		defer f.Close()
		wf, err := workflow.DecodeJSON(f)
		if err != nil {
			return nil, nil, err
		}
		var v *view.View
		if viewPath != "" {
			vf, err := os.Open(viewPath)
			if err != nil {
				return nil, nil, err
			}
			defer vf.Close()
			v, err = view.DecodeJSON(wf, vf)
			if err != nil {
				return nil, nil, err
			}
		}
		return wf, v, nil
	default:
		return nil, nil, errors.New("no input: use -moml or -workflow")
	}
}

func cmdValidate(args []string) error {
	fs := flag.NewFlagSet("validate", flag.ExitOnError)
	var in inputFlags
	in.register(fs)
	paths := fs.Bool("paths", false, "also run the direct Definition-2.1 path check")
	fs.Parse(args)
	wf, v, err := in.load(true)
	if err != nil {
		return err
	}
	eng := newEngine()
	o := eng.Oracle(wf)
	if err := display.Summary(os.Stdout, o, v); err != nil {
		return err
	}
	if *paths {
		prep := soundness.ValidateViewPaths(o, v)
		fmt.Printf("definition-2.1 path check: sound=%v false-paths=%d\n",
			prep.Sound, len(prep.FalsePaths))
	}
	return reportSound(eng, wf, v)
}

func cmdCorrect(args []string) error {
	fs := flag.NewFlagSet("correct", flag.ExitOnError)
	var in inputFlags
	in.register(fs)
	crit := fs.String("criterion", "strong", "weak|strong|strong-audited|optimal")
	out := fs.String("out", "", "write the corrected view as JSON to this file")
	mergeUp := fs.Bool("merge-up", false, "correct by merging composites instead of splitting")
	timeout := fs.Duration("timeout", 0, "abort the correction after this long (0 = no bound)")
	fs.Parse(args)
	wf, v, err := in.load(true)
	if err != nil {
		return err
	}
	eng := newEngine()
	o := eng.Oracle(wf)
	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	var corrected *view.View
	if *mergeUp {
		if *timeout > 0 {
			// MergeUp has no cancellation path yet; silently ignoring the
			// flag would promise a bound that does not exist.
			return errors.New("-timeout is not supported with -merge-up")
		}
		res, err := core.MergeUp(o, v)
		if err != nil {
			return err
		}
		corrected = res.Corrected
		fmt.Printf("merge-up: %d → %d composites (%d merges, %v)\n",
			res.CompositesBefore, res.CompositesAfter, res.Merges, res.Elapsed.Round(1000))
	} else {
		c, err := parseCriterionFlag(*crit)
		if err != nil {
			return err
		}
		vc, err := eng.CorrectWithOracle(ctx, o, v, c, nil)
		if err != nil {
			return err
		}
		corrected = vc.Corrected
		fmt.Printf("%s: %d → %d composites in %v\n",
			c, vc.CompositesBefore, vc.CompositesAfter, vc.Elapsed.Round(1000))
		for _, tc := range vc.Tasks {
			fmt.Printf("  split %s: %d tasks → %d sound blocks (checks=%d merges=%d)\n",
				tc.CompositeID, tc.Before, tc.After,
				tc.Result.Stats.SoundChecks, tc.Result.Stats.Merges)
		}
	}
	if err := display.Summary(os.Stdout, o, corrected); err != nil {
		return err
	}
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := corrected.EncodeJSON(f); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", *out)
	}
	return nil
}

func cmdLineage(args []string) error {
	fs := flag.NewFlagSet("lineage", flag.ExitOnError)
	var in inputFlags
	in.register(fs)
	task := fs.String("task", "", "task ID to query")
	fs.Parse(args)
	if *task == "" {
		return errors.New("need -task")
	}
	wf, v, err := in.load(false)
	if err != nil {
		return err
	}
	e := provenance.NewEngine(wf)
	if err := display.Dependencies(os.Stdout, e, *task); err != nil {
		return err
	}
	if v != nil {
		ti, _ := wf.Index(*task)
		ve := provenance.NewViewEngine(v)
		var ids []string
		for _, t := range ve.TaskLineage(ti) {
			ids = append(ids, wf.Task(t).ID)
		}
		fmt.Printf("  view answer : {%s}\n", strings.Join(ids, ", "))
		audit := provenance.AuditView(e, v)
		fmt.Printf("  view audit  : false pairs=%d precision=%.2f\n",
			audit.FalsePairs, audit.Precision)
	}
	return nil
}

func cmdDot(args []string) error {
	fs := flag.NewFlagSet("dot", flag.ExitOnError)
	var in inputFlags
	in.register(fs)
	of := fs.String("of", "workflow", "workflow|view")
	fs.Parse(args)
	wf, v, err := in.load(*of == "view")
	if err != nil {
		return err
	}
	var opts *display.Options
	if v != nil {
		o := soundness.NewOracle(wf)
		opts = &display.Options{Report: soundness.ValidateView(o, v)}
	}
	switch *of {
	case "workflow":
		return display.WorkflowDOT(os.Stdout, wf, v, opts)
	case "view":
		return display.ViewDOT(os.Stdout, v, opts)
	default:
		return fmt.Errorf("unknown -of %q", *of)
	}
}

func cmdRepo(args []string) error {
	if len(args) < 1 {
		return errors.New("usage: wolves repo list|show|audit [key]")
	}
	switch args[0] {
	case "list":
		for _, e := range repo.Catalog() {
			fmt.Printf("%-22s %-18s %2d tasks  %d views  %s\n",
				e.Key, e.Source, e.Workflow.N(), len(e.Views), e.Title)
		}
		return nil
	case "show":
		if len(args) < 2 {
			return errors.New("usage: wolves repo show <key>")
		}
		e, err := repo.Get(args[1])
		if err != nil {
			return err
		}
		fmt.Printf("%s — %s\n%s\nsource: %s, domain: %s\n\n",
			e.Key, e.Title, e.Notes, e.Source, e.Domain)
		o := soundness.NewOracle(e.Workflow)
		for _, vs := range e.Views {
			if err := display.Summary(os.Stdout, o, vs.View); err != nil {
				return err
			}
			fmt.Println()
		}
		return nil
	case "audit":
		total, unsound := 0, 0
		for _, e := range repo.Catalog() {
			o := soundness.NewOracle(e.Workflow)
			for _, vs := range e.Views {
				rep := soundness.ValidateView(o, vs.View)
				total++
				status := "sound"
				if !rep.Sound {
					unsound++
					status = fmt.Sprintf("UNSOUND (%d composites)", len(rep.Unsound))
				}
				fmt.Printf("%-22s %-24s %s\n", e.Key, vs.View.Name(), status)
			}
		}
		fmt.Printf("\n%d of %d views unsound\n", unsound, total)
		return nil
	default:
		return fmt.Errorf("unknown repo subcommand %q", args[0])
	}
}

func cmdSession(args []string) error {
	fs := flag.NewFlagSet("session", flag.ExitOnError)
	var in inputFlags
	in.register(fs)
	script := fs.String("script", "", "session script file ('-' for stdin)")
	fs.Parse(args)
	if *script == "" {
		return errors.New("need -script")
	}
	wf, v, err := in.load(true)
	if err != nil {
		return err
	}
	s, err := feedback.NewSessionWith(newEngine(), wf, v)
	if err != nil {
		return err
	}
	src := os.Stdin
	if *script != "-" {
		f, err := os.Open(*script)
		if err != nil {
			return err
		}
		defer f.Close()
		src = f
	}
	return s.RunScript(src, os.Stdout)
}

func cmdEstimate(args []string) error {
	fs := flag.NewFlagSet("estimate", flag.ExitOnError)
	n := fs.Int("n", 12, "composite size to estimate for")
	edges := fs.Int("edges", 14, "edges inside the composite")
	crit := fs.String("criterion", "strong", "criterion to estimate")
	hist := fs.String("history", "", "history JSON (read, and written with -train)")
	train := fs.Bool("train", false, "train on a generated corpus before predicting")
	fs.Parse(args)
	est := estimate.New()
	if *hist != "" {
		if f, err := os.Open(*hist); err == nil {
			defer f.Close()
			if err := est.Load(f); err != nil {
				return err
			}
		}
	}
	if *train {
		for _, size := range []int{6, 8, 10, 12, 14, 16} {
			for seed := int64(0); seed < 4; seed++ {
				wf, members := gen.UnsoundTask(size, seed)
				o := soundness.NewOracle(wf)
				inner := countInnerEdges(wf, members)
				opt, err := core.SplitTask(o, members, core.Optimal, nil)
				if err != nil {
					return err
				}
				for _, c := range []core.Criterion{core.Weak, core.Strong, core.Optimal} {
					res, err := core.SplitTask(o, members, c, nil)
					if err != nil {
						return err
					}
					est.Record(size, inner, c.String(), res.Stats.Elapsed,
						core.Quality(len(opt.Blocks), len(res.Blocks)))
				}
			}
		}
		if *hist != "" {
			f, err := os.Create(*hist)
			if err != nil {
				return err
			}
			defer f.Close()
			if err := est.Save(f); err != nil {
				return err
			}
			fmt.Printf("history written to %s\n", *hist)
		}
	}
	c, err := parseCriterionFlag(*crit)
	if err != nil {
		return err
	}
	pred, ok := est.Predict(*n, *edges, c.String())
	if !ok {
		return fmt.Errorf("no history for this group (size=%d edges=%d); run with -train", *n, *edges)
	}
	fmt.Printf("group %+v, %s: est. time %v, est. quality %.2f (%d samples)\n",
		estimate.Classify(*n, *edges), c, pred.AvgTime, pred.AvgQuality, pred.Samples)
	return nil
}

func countInnerEdges(wf *workflow.Workflow, members []int) int {
	in := map[int]bool{}
	for _, m := range members {
		in[m] = true
	}
	edges := 0
	wf.Graph().Edges(func(u, v int) {
		if in[u] && in[v] {
			edges++
		}
	})
	return edges
}

func cmdConvert(args []string) error {
	fs := flag.NewFlagSet("convert", flag.ExitOnError)
	var in inputFlags
	in.register(fs)
	to := fs.String("to", "", "json|moml")
	fs.Parse(args)
	wf, v, err := in.load(false)
	if err != nil {
		return err
	}
	switch *to {
	case "json":
		if err := wf.EncodeJSON(os.Stdout); err != nil {
			return err
		}
		if v != nil {
			return v.EncodeJSON(os.Stdout)
		}
		return nil
	case "moml":
		return moml.Encode(os.Stdout, wf, v)
	default:
		return fmt.Errorf("unknown -to %q (want json|moml)", *to)
	}
}
