// Command wolves is the WOLVES demo as a terminal tool: it validates
// workflow views against their workflow specifications, corrects unsound
// views under the paper's three criteria, answers provenance queries,
// explores the simulated repository, estimates correction cost, and
// drives scripted feedback sessions.
//
// Usage:
//
//	wolves validate  (-moml f.xml | -workflow wf.json -view v.json) [-paths]
//	wolves correct   (-moml f.xml | -workflow wf.json -view v.json)
//	                 [-criterion weak|strong|strong-audited|optimal]
//	                 [-out corrected.json] [-merge-up]
//	wolves lineage   (-moml f.xml | -workflow wf.json [-view v.json]) -task ID
//	wolves dot       (-moml f.xml | -workflow wf.json -view v.json) [-of view|workflow]
//	wolves repo      list | show <key> | audit
//	wolves session   (-moml f.xml | -workflow wf.json -view v.json) -script s.txt
//	wolves estimate  -n N -edges M [-criterion c] [-history hist.json] [-train]
//	wolves convert   -moml f.xml -to json | -workflow wf.json -view v.json -to moml
//
// Exit status: 0 on success (validate: view sound), 1 on error,
// 3 when validate finds an unsound view.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"

	"wolves/internal/core"
	"wolves/internal/engine"
	"wolves/internal/view"
	"wolves/internal/workflow"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(1)
	}
	var err error
	switch os.Args[1] {
	case "validate":
		err = cmdValidate(os.Args[2:])
	case "correct":
		err = cmdCorrect(os.Args[2:])
	case "lineage":
		err = cmdLineage(os.Args[2:])
	case "dot":
		err = cmdDot(os.Args[2:])
	case "repo":
		err = cmdRepo(os.Args[2:])
	case "session":
		err = cmdSession(os.Args[2:])
	case "estimate":
		err = cmdEstimate(os.Args[2:])
	case "convert":
		err = cmdConvert(os.Args[2:])
	case "help", "-h", "--help":
		usage()
		return
	default:
		fmt.Fprintf(os.Stderr, "wolves: unknown command %q\n", os.Args[1])
		usage()
		os.Exit(1)
	}
	if err != nil {
		var ue unsoundErr
		if errors.As(err, &ue) {
			fmt.Fprintln(os.Stderr, "wolves:", err)
			os.Exit(3)
		}
		fmt.Fprintln(os.Stderr, "wolves:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `wolves — detect and resolve unsound workflow views (WOLVES, VLDB'09)

commands:
  validate   check a view's soundness, with witnesses
  correct    repair an unsound view (weak|strong|strong-audited|optimal, or -merge-up)
  lineage    provenance of a task's output (workflow- and view-level)
  dot        Graphviz rendering (unsound composites red)
  repo       explore the simulated workflow repository
  session    run a scripted validate/correct/feedback session
  estimate   predict correction time and quality (§3.2 estimator)
  convert    convert between MOML and JSON formats

run 'wolves <command> -h' for flags`)
}

// unsoundErr signals exit status 3 (view is unsound).
type unsoundErr struct{ msg string }

func (e unsoundErr) Error() string { return e.msg }

// inputFlags wires the shared -moml/-workflow/-view source flags.
type inputFlags struct {
	moml, wf, view string
}

func (in *inputFlags) register(fs *flag.FlagSet) {
	fs.StringVar(&in.moml, "moml", "", "MOML file holding the workflow (and view)")
	fs.StringVar(&in.wf, "workflow", "", "workflow JSON file")
	fs.StringVar(&in.view, "view", "", "view JSON file (requires -workflow)")
}

// load reads the workflow and (optionally) the view. needView demands one.
func (in *inputFlags) load(needView bool) (*workflow.Workflow, *view.View, error) {
	wf, v, err := loadInputs(in.moml, in.wf, in.view)
	if err != nil {
		return nil, nil, err
	}
	if needView && v == nil {
		return nil, nil, errors.New("no view given: use -moml with composites or -view")
	}
	return wf, v, nil
}

// newEngine builds the one Engine each CLI invocation runs through —
// the same pipeline object wolvesd serves from.
func newEngine() *engine.Engine {
	return engine.New(engine.WithOracleCache(4))
}

func reportSound(eng *engine.Engine, wf *workflow.Workflow, v *view.View) error {
	rep, err := eng.Validate(context.Background(), wf, v)
	if err != nil {
		return err
	}
	if !rep.Sound {
		var ids []string
		for _, ci := range rep.Unsound {
			ids = append(ids, v.Composite(ci).ID)
		}
		return unsoundErr{fmt.Sprintf("view %q is UNSOUND (composites: %v)", v.Name(), ids)}
	}
	return nil
}

func parseCriterionFlag(s string) (core.Criterion, error) {
	return core.ParseCriterion(s)
}
