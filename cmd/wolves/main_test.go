package main

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"wolves/internal/moml"
	"wolves/internal/repo"
)

// writeFixtures materializes the Figure 1 fixture in a temp dir.
func writeFixtures(t *testing.T) (dir, momlPath, wfPath, viewPath string) {
	t.Helper()
	dir = t.TempDir()
	wf, v := repo.Figure1()

	momlPath = filepath.Join(dir, "fig1.xml")
	mf, err := os.Create(momlPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := moml.Encode(mf, wf, v); err != nil {
		t.Fatal(err)
	}
	mf.Close()

	wfPath = filepath.Join(dir, "wf.json")
	wfF, err := os.Create(wfPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := wf.EncodeJSON(wfF); err != nil {
		t.Fatal(err)
	}
	wfF.Close()

	viewPath = filepath.Join(dir, "view.json")
	vF, err := os.Create(viewPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := v.EncodeJSON(vF); err != nil {
		t.Fatal(err)
	}
	vF.Close()
	return dir, momlPath, wfPath, viewPath
}

// capture redirects stdout during fn.
func capture(t *testing.T, fn func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	errRun := fn()
	w.Close()
	os.Stdout = old
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(r); err != nil {
		t.Fatal(err)
	}
	return buf.String(), errRun
}

func TestLoadInputs(t *testing.T) {
	_, momlPath, wfPath, viewPath := writeFixtures(t)

	wf, v, err := loadInputs(momlPath, "", "")
	if err != nil || wf == nil || v == nil {
		t.Fatalf("moml load: %v", err)
	}
	wf, v, err = loadInputs("", wfPath, viewPath)
	if err != nil || wf.N() != 12 || v.N() != 7 {
		t.Fatalf("json load: %v", err)
	}
	wf, v, err = loadInputs("", wfPath, "")
	if err != nil || v != nil {
		t.Fatalf("workflow-only load: %v %v", v, err)
	}
	if _, _, err := loadInputs(momlPath, wfPath, ""); err == nil {
		t.Fatal("both sources must error")
	}
	if _, _, err := loadInputs("", "", ""); err == nil {
		t.Fatal("no source must error")
	}
	if _, _, err := loadInputs("/nonexistent.xml", "", ""); err == nil {
		t.Fatal("missing file must error")
	}
}

func TestCmdValidate(t *testing.T) {
	_, momlPath, _, _ := writeFixtures(t)
	out, err := capture(t, func() error {
		return cmdValidate([]string{"-moml", momlPath, "-paths"})
	})
	var ue unsoundErr
	if !errors.As(err, &ue) {
		t.Fatalf("expected unsound exit, got %v", err)
	}
	for _, want := range []string{"UNSOUND", "[!!] 16", "definition-2.1 path check"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestCmdCorrect(t *testing.T) {
	dir, momlPath, _, _ := writeFixtures(t)
	outFile := filepath.Join(dir, "fixed.json")
	out, err := capture(t, func() error {
		return cmdCorrect([]string{"-moml", momlPath, "-criterion", "strong", "-out", outFile})
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"7 → 8 composites", "split 16", "SOUND"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
	data, err := os.ReadFile(outFile)
	if err != nil || !strings.Contains(string(data), "16.1") {
		t.Fatalf("corrected view file wrong: %v\n%s", err, data)
	}

	// Merge-up variant.
	out, err = capture(t, func() error {
		return cmdCorrect([]string{"-moml", momlPath, "-merge-up"})
	})
	if err != nil || !strings.Contains(out, "merge-up") {
		t.Fatalf("merge-up: %v\n%s", err, out)
	}

	// Bad criterion.
	if _, err := capture(t, func() error {
		return cmdCorrect([]string{"-moml", momlPath, "-criterion", "bogus"})
	}); err == nil {
		t.Fatal("bogus criterion must error")
	}
}

func TestCmdLineage(t *testing.T) {
	_, momlPath, _, _ := writeFixtures(t)
	out, err := capture(t, func() error {
		return cmdLineage([]string{"-moml", momlPath, "-task", "8"})
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"depends on : {1, 2, 6, 7}", "view answer", "false pairs=2"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
	if _, err := capture(t, func() error {
		return cmdLineage([]string{"-moml", momlPath})
	}); err == nil {
		t.Fatal("missing -task must error")
	}
}

func TestCmdDot(t *testing.T) {
	_, momlPath, _, _ := writeFixtures(t)
	out, err := capture(t, func() error {
		return cmdDot([]string{"-moml", momlPath, "-of", "workflow"})
	})
	if err != nil || !strings.Contains(out, "cluster_16") {
		t.Fatalf("workflow dot: %v\n%s", err, out)
	}
	out, err = capture(t, func() error {
		return cmdDot([]string{"-moml", momlPath, "-of", "view"})
	})
	if err != nil || !strings.Contains(out, `"16"`) {
		t.Fatalf("view dot: %v\n%s", err, out)
	}
	if _, err := capture(t, func() error {
		return cmdDot([]string{"-moml", momlPath, "-of", "sideways"})
	}); err == nil {
		t.Fatal("bad -of must error")
	}
}

func TestCmdRepo(t *testing.T) {
	out, err := capture(t, func() error { return cmdRepo([]string{"list"}) })
	if err != nil || !strings.Contains(out, "phylogenomics") {
		t.Fatalf("repo list: %v\n%s", err, out)
	}
	out, err = capture(t, func() error { return cmdRepo([]string{"show", "etl-sales"}) })
	if err != nil || !strings.Contains(out, "etl-stage-banded") {
		t.Fatalf("repo show: %v\n%s", err, out)
	}
	out, err = capture(t, func() error { return cmdRepo([]string{"audit"}) })
	if err != nil || !strings.Contains(out, "views unsound") {
		t.Fatalf("repo audit: %v\n%s", err, out)
	}
	if err := cmdRepo([]string{}); err == nil {
		t.Fatal("no subcommand must error")
	}
	if err := cmdRepo([]string{"bogus"}); err == nil {
		t.Fatal("bogus subcommand must error")
	}
	if err := cmdRepo([]string{"show"}); err == nil {
		t.Fatal("show without key must error")
	}
	if err := cmdRepo([]string{"show", "ghost"}); err == nil {
		t.Fatal("unknown key must error")
	}
}

func TestCmdSession(t *testing.T) {
	dir, momlPath, _, _ := writeFixtures(t)
	script := filepath.Join(dir, "s.txt")
	if err := os.WriteFile(script, []byte("validate\ncorrect strong\naccept\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	out, err := capture(t, func() error {
		return cmdSession([]string{"-moml", momlPath, "-script", script})
	})
	if err != nil || !strings.Contains(out, "accept: sound=true") {
		t.Fatalf("session: %v\n%s", err, out)
	}
	if _, err := capture(t, func() error {
		return cmdSession([]string{"-moml", momlPath})
	}); err == nil {
		t.Fatal("missing -script must error")
	}
}

func TestCmdEstimateAndConvert(t *testing.T) {
	dir, momlPath, wfPath, viewPath := writeFixtures(t)
	hist := filepath.Join(dir, "hist.json")
	out, err := capture(t, func() error {
		return cmdEstimate([]string{"-train", "-history", hist, "-n", "10", "-edges", "12", "-criterion", "strong"})
	})
	if err != nil || !strings.Contains(out, "est. time") {
		t.Fatalf("estimate: %v\n%s", err, out)
	}
	if _, err := os.Stat(hist); err != nil {
		t.Fatal("history file not written")
	}
	// Without training and with an empty group: error.
	if _, err := capture(t, func() error {
		return cmdEstimate([]string{"-n", "999", "-edges", "2"})
	}); err == nil {
		t.Fatal("no history must error")
	}

	out, err = capture(t, func() error {
		return cmdConvert([]string{"-moml", momlPath, "-to", "json"})
	})
	if err != nil || !strings.Contains(out, `"phylogenomics"`) {
		t.Fatalf("convert to json: %v\n%s", err, out)
	}
	out, err = capture(t, func() error {
		return cmdConvert([]string{"-workflow", wfPath, "-view", viewPath, "-to", "moml"})
	})
	if err != nil || !strings.Contains(out, "TypedCompositeActor") {
		t.Fatalf("convert to moml: %v\n%s", err, out)
	}
	if _, err := capture(t, func() error {
		return cmdConvert([]string{"-moml", momlPath, "-to", "yaml"})
	}); err == nil {
		t.Fatal("bad -to must error")
	}
}
