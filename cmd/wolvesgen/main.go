// Command wolvesgen generates workflow/view corpora for experiments:
// layered DAGs, series-parallel graphs, Kepler-style scientific
// pipelines and guaranteed-unsound composite tasks, with interval,
// random, module or Biton-style views, written as JSON or MOML.
//
// Examples:
//
//	wolvesgen -kind pipeline -branches 4 -chain 5 -view module -format moml
//	wolvesgen -kind layered -tasks 200 -layers 12 -view interval -k 10
//	wolvesgen -kind unsound -tasks 24 -seed 7 -format json
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"wolves/internal/gen"
	"wolves/internal/moml"
	"wolves/internal/view"
	"wolves/internal/workflow"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "wolvesgen:", err)
		os.Exit(1)
	}
}

func run(args []string, out *os.File) error {
	fs := flag.NewFlagSet("wolvesgen", flag.ExitOnError)
	kind := fs.String("kind", "layered", "layered|sp|pipeline|unsound")
	name := fs.String("name", "generated", "workflow name")
	tasks := fs.Int("tasks", 50, "task count (layered, unsound)")
	layers := fs.Int("layers", 6, "layer count (layered)")
	edgeProb := fs.Float64("edgeprob", 0.3, "adjacent-layer edge probability (layered)")
	skipProb := fs.Float64("skipprob", 0.05, "layer-skip edge probability (layered)")
	depth := fs.Int("depth", 3, "recursion depth (sp)")
	branch := fs.Int("branch", 3, "max branches (sp) / branches (pipeline)")
	chain := fs.Int("chain", 3, "chain length (pipeline)")
	side := fs.Int("side", 1, "side chains (pipeline)")
	seed := fs.Int64("seed", 1, "RNG seed")
	viewKind := fs.String("view", "", "interval|random|module|biton (empty: no view)")
	k := fs.Int("k", 5, "composite count (interval, random)")
	relevant := fs.String("relevant", "", "comma-separated relevant task IDs (biton)")
	format := fs.String("format", "json", "json|moml")
	fs.Parse(args)

	var wf *workflow.Workflow
	switch *kind {
	case "layered":
		wf = gen.Layered(gen.LayeredConfig{
			Name: *name, Tasks: *tasks, Layers: *layers,
			EdgeProb: *edgeProb, SkipProb: *skipProb, Seed: *seed,
		})
	case "sp":
		wf = gen.SeriesParallel(gen.SPConfig{
			Name: *name, Depth: *depth, MaxBranch: *branch, Seed: *seed,
		})
	case "pipeline":
		wf = gen.ScientificPipeline(gen.PipelineConfig{
			Name: *name, Branches: *branch, ChainLen: *chain,
			SideChains: *side, SideChainLen: *chain, Seed: *seed,
		})
	case "unsound":
		w, members := gen.UnsoundTask(*tasks, *seed)
		wf = w
		fmt.Fprintf(os.Stderr, "unsound composite members: %d tasks\n", len(members))
	default:
		return fmt.Errorf("unknown -kind %q", *kind)
	}

	var v *view.View
	var err error
	switch *viewKind {
	case "":
	case "interval":
		v = gen.IntervalView(wf, *k, *name+"-interval")
	case "random":
		v = gen.RandomView(wf, *k, *seed, *name+"-random")
	case "module":
		v = gen.ModuleView(wf, *name+"-module")
	case "biton":
		ids := strings.Split(*relevant, ",")
		if *relevant == "" {
			return fmt.Errorf("biton view needs -relevant task IDs")
		}
		v, err = gen.BitonStyleView(wf, ids, *name+"-biton")
		if err != nil {
			return err
		}
	default:
		return fmt.Errorf("unknown -view %q", *viewKind)
	}

	switch *format {
	case "json":
		if err := wf.EncodeJSON(out); err != nil {
			return err
		}
		if v != nil {
			return v.EncodeJSON(out)
		}
		return nil
	case "moml":
		return moml.Encode(out, wf, v)
	default:
		return fmt.Errorf("unknown -format %q", *format)
	}
}
