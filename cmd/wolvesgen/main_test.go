package main

import (
	"bytes"
	"os"
	"strings"
	"testing"

	"wolves/internal/moml"
	"wolves/internal/workflow"
)

// runCapture runs the generator with stdout redirected to a pipe.
func runCapture(t *testing.T, args []string) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	errRun := run(args, w)
	w.Close()
	os.Stdout = old
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(r); err != nil {
		t.Fatal(err)
	}
	return buf.String(), errRun
}

func TestGenLayeredJSON(t *testing.T) {
	out, err := runCapture(t, []string{"-kind", "layered", "-tasks", "30", "-layers", "5", "-format", "json"})
	if err != nil {
		t.Fatal(err)
	}
	wf, err := workflow.DecodeJSON(strings.NewReader(out))
	if err != nil {
		t.Fatalf("generated JSON must decode: %v\n%s", err, out)
	}
	if wf.N() != 30 {
		t.Fatalf("N = %d", wf.N())
	}
}

func TestGenPipelineMOMLWithModuleView(t *testing.T) {
	out, err := runCapture(t, []string{"-kind", "pipeline", "-branch", "3", "-chain", "2",
		"-view", "module", "-format", "moml"})
	if err != nil {
		t.Fatal(err)
	}
	doc, err := moml.Decode(strings.NewReader(out))
	if err != nil {
		t.Fatalf("generated MOML must decode: %v", err)
	}
	if doc.View == nil {
		t.Fatal("module view lost")
	}
}

func TestGenSPAndUnsoundAndViews(t *testing.T) {
	if _, err := runCapture(t, []string{"-kind", "sp", "-depth", "2"}); err != nil {
		t.Fatal(err)
	}
	if _, err := runCapture(t, []string{"-kind", "unsound", "-tasks", "12"}); err != nil {
		t.Fatal(err)
	}
	if _, err := runCapture(t, []string{"-kind", "layered", "-view", "interval", "-k", "4"}); err != nil {
		t.Fatal(err)
	}
	if _, err := runCapture(t, []string{"-kind", "layered", "-view", "random", "-k", "4"}); err != nil {
		t.Fatal(err)
	}
	if _, err := runCapture(t, []string{"-kind", "pipeline", "-view", "biton", "-relevant", "merge"}); err != nil {
		t.Fatal(err)
	}
}

func TestGenErrors(t *testing.T) {
	cases := [][]string{
		{"-kind", "bogus"},
		{"-view", "bogus"},
		{"-view", "biton"}, // missing -relevant
		{"-format", "bogus"},
		{"-view", "biton", "-relevant", "ghost"},
	}
	for _, args := range cases {
		if _, err := runCapture(t, args); err == nil {
			t.Errorf("args %v must error", args)
		}
	}
}
