package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestRunSingleExperiment renders one fast experiment in both formats.
func TestRunSingleExperiment(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-exp", "e1", "-fast"}, &out, &errb); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "== E1") {
		t.Fatalf("text output missing experiment header:\n%s", out.String())
	}

	out.Reset()
	if code := run([]string{"-exp", "e2", "-fast", "-md"}, &out, &errb); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "### E2") || !strings.Contains(out.String(), "|") {
		t.Fatalf("markdown output malformed:\n%s", out.String())
	}
}

// TestRunUnknownExperiment exits 1 with a diagnostic.
func TestRunUnknownExperiment(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-exp", "e99"}, &out, &errb); code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
	if !strings.Contains(errb.String(), "unknown id") {
		t.Fatalf("stderr = %q", errb.String())
	}
}

// TestRunBadFlag exits 2 on flag errors instead of os.Exit-ing the
// process.
func TestRunBadFlag(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-nonsense"}, &out, &errb); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
}

// TestRunCaseInsensitiveID mirrors the ByID contract through the CLI.
func TestRunCaseInsensitiveID(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-exp", "E8"}, &out, &errb); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	if out.Len() == 0 {
		t.Fatal("no output for E8")
	}
}
