// Command wolvestables regenerates every table and figure-series of the
// WOLVES evaluation (experiment index in DESIGN.md §3; measured results
// in EXPERIMENTS.md).
//
// Usage:
//
//	wolvestables              # run all experiments (full sweeps)
//	wolvestables -fast        # trimmed sweeps (seconds, CI-friendly)
//	wolvestables -exp e4      # one experiment
//	wolvestables -md          # markdown output (for EXPERIMENTS.md)
package main

import (
	"fmt"
	"os"

	"flag"

	"wolves/internal/experiments"
)

func main() {
	fs := flag.NewFlagSet("wolvestables", flag.ExitOnError)
	exp := fs.String("exp", "all", "experiment id (e1..e9, a1, a2) or 'all'")
	fast := fs.Bool("fast", false, "trimmed sweeps")
	md := fs.Bool("md", false, "markdown output")
	fs.Parse(os.Args[1:])

	var tables []*experiments.Table
	if *exp == "all" {
		tables = experiments.All(*fast)
	} else {
		t, err := experiments.ByID(*exp, *fast)
		if err != nil {
			fmt.Fprintln(os.Stderr, "wolvestables:", err)
			os.Exit(1)
		}
		tables = []*experiments.Table{t}
	}
	for _, t := range tables {
		var err error
		if *md {
			err = t.Markdown(os.Stdout)
		} else {
			err = t.Render(os.Stdout)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "wolvestables:", err)
			os.Exit(1)
		}
	}
}
