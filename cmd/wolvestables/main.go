// Command wolvestables regenerates every table and figure-series of the
// WOLVES evaluation (experiment index in DESIGN.md §3; measured results
// in EXPERIMENTS.md).
//
// Usage:
//
//	wolvestables              # run all experiments (full sweeps)
//	wolvestables -fast        # trimmed sweeps (seconds, CI-friendly)
//	wolvestables -exp e4      # one experiment
//	wolvestables -md          # markdown output (for EXPERIMENTS.md)
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"wolves/internal/experiments"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable body of the command; it returns the exit status.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("wolvestables", flag.ContinueOnError)
	fs.SetOutput(stderr)
	exp := fs.String("exp", "all", "experiment id (e1..e9, a1, a2) or 'all'")
	fast := fs.Bool("fast", false, "trimmed sweeps")
	md := fs.Bool("md", false, "markdown output")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	var tables []*experiments.Table
	if *exp == "all" {
		tables = experiments.All(*fast)
	} else {
		t, err := experiments.ByID(*exp, *fast)
		if err != nil {
			fmt.Fprintln(stderr, "wolvestables:", err)
			return 1
		}
		tables = []*experiments.Table{t}
	}
	for _, t := range tables {
		var err error
		if *md {
			err = t.Markdown(stdout)
		} else {
			err = t.Render(stdout)
		}
		if err != nil {
			fmt.Fprintln(stderr, "wolvestables:", err)
			return 1
		}
	}
	return 0
}
