package main

import (
	"bytes"
	"io"
	"net"
	"net/http"
	"strings"
	"syscall"
	"testing"
	"time"

	"wolves/internal/storage"
	"wolves/internal/storage/vfs"
)

// TestRunBadAddr: an unusable listen address must surface as an error,
// not a hang.
func TestRunBadAddr(t *testing.T) {
	done := make(chan error, 1)
	go func() { done <- run([]string{"-addr", "256.0.0.1:http"}) }()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("expected listen error")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("run did not return on a bad address")
	}
}

// TestRunServesAndShutsDown boots the daemon on a free port, hits
// /healthz, then delivers SIGTERM and expects a clean drain.
func TestRunServesAndShutsDown(t *testing.T) {
	// Reserve a free port, then hand its address to the daemon.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()

	done := make(chan error, 1)
	go func() {
		done <- run([]string{"-addr", addr, "-cache", "4", "-optimal-timeout", "100ms"})
	}()

	healthy := false
	for i := 0; i < 100; i++ {
		resp, err := http.Get("http://" + addr + "/healthz")
		if err == nil {
			resp.Body.Close()
			healthy = resp.StatusCode == http.StatusOK
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if !healthy {
		t.Fatal("daemon never became healthy")
	}

	// SIGTERM is caught by signal.NotifyContext inside run, which drains
	// and returns nil; the test process itself is unaffected while the
	// handler is registered.
	if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("shutdown returned %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("daemon did not shut down on SIGTERM")
	}
}

// bootDaemon starts the daemon with extra flags on a free port and waits
// for /healthz; it returns the base URL and the run() result channel.
func bootDaemon(t *testing.T, extra ...string) (string, chan error) {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	done := make(chan error, 1)
	go func() { done <- run(append([]string{"-addr", addr}, extra...)) }()
	for i := 0; i < 150; i++ {
		resp, err := http.Get("http://" + addr + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return "http://" + addr, done
			}
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatal("daemon never became healthy")
	return "", nil
}

// stopDaemon delivers SIGTERM and waits for a clean exit.
func stopDaemon(t *testing.T, done chan error) {
	t.Helper()
	if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("shutdown returned %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("daemon did not shut down on SIGTERM")
	}
}

// httpDo issues one request and returns the body.
func httpDo(t *testing.T, method, url, body string) (int, string) {
	t.Helper()
	var rd io.Reader
	if body != "" {
		rd = bytes.NewReader([]byte(body))
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(data)
}

// TestDurableRestartPreservesRegistry: register and mutate a workflow,
// SIGTERM the daemon, boot a fresh one on the same -data-dir, and the
// registry must come back — same version, same maintained report.
func TestDurableRestartPreservesRegistry(t *testing.T) {
	dir := t.TempDir()

	base, done := bootDaemon(t, "-data-dir", dir, "-fsync", "none")
	status, body := httpDo(t, http.MethodPut, base+"/v1/workflows/demo", `{
		"workflow": {"name":"demo","tasks":[{"id":"a"},{"id":"b"},{"id":"c"}],"edges":[["a","b"]]},
		"views": [{"id":"v","view":{"name":"v","workflow":"demo","composites":[
			{"id":"ab","members":["a","b"]},{"id":"cc","members":["c"]}]}}]
	}`)
	if status != http.StatusOK {
		t.Fatalf("register: %d %s", status, body)
	}
	status, body = httpDo(t, http.MethodPost, base+"/v1/workflows/demo/mutate",
		`{"edges": [["b","c"]], "tasks": [{"id":"d"}]}`)
	if status != http.StatusOK || !strings.Contains(body, `"version":2`) {
		t.Fatalf("mutate: %d %s", status, body)
	}
	_, wantReport := httpDo(t, http.MethodPost, base+"/v1/workflows/demo/views/v/validate", "")
	stopDaemon(t, done)

	base, done = bootDaemon(t, "-data-dir", dir, "-fsync", "none")
	defer stopDaemon(t, done)
	status, body = httpDo(t, http.MethodGet, base+"/v1/workflows", "")
	if status != http.StatusOK || !strings.Contains(body, `"count":1`) || !strings.Contains(body, `"demo"`) {
		t.Fatalf("list after restart: %d %s", status, body)
	}
	status, body = httpDo(t, http.MethodGet, base+"/v1/workflows/demo", "")
	if status != http.StatusOK || !strings.Contains(body, `"version":2`) {
		t.Fatalf("get after restart: %d %s", status, body)
	}
	status, gotReport := httpDo(t, http.MethodPost, base+"/v1/workflows/demo/views/v/validate", "")
	if status != http.StatusOK || gotReport != wantReport {
		t.Fatalf("report after restart diverges:\ngot:  %s\nwant: %s", gotReport, wantReport)
	}
	// The recovered daemon keeps journaling: mutate once more and make
	// sure the version advances from the recovered state.
	status, body = httpDo(t, http.MethodPost, base+"/v1/workflows/demo/mutate", `{"edges": [["a","d"]]}`)
	if status != http.StatusOK || !strings.Contains(body, `"version":3`) {
		t.Fatalf("mutate after restart: %d %s", status, body)
	}
}

// TestShutdownCheckpointFailureKeepsWAL: when the final checkpoint
// cannot land (disk refuses the snapshot rename), the daemon must not
// pretend the shutdown was clean — it logs, still releases the store,
// and exits non-zero. The WAL on disk stays authoritative: a clean
// reboot replays it and serves the exact pre-shutdown state.
func TestShutdownCheckpointFailureKeepsWAL(t *testing.T) {
	dir := t.TempDir()
	ffs := vfs.NewFault(vfs.OS())
	openStore = func(d string, opts storage.Options) (*storage.Store, error) {
		opts.FS = ffs
		return storage.Open(d, opts)
	}
	defer func() { openStore = storage.Open }()

	base, done := bootDaemon(t, "-data-dir", dir, "-fsync", "none")
	status, body := httpDo(t, http.MethodPut, base+"/v1/workflows/demo", `{
		"workflow": {"name":"demo","tasks":[{"id":"a"},{"id":"b"},{"id":"c"}],"edges":[["a","b"]]},
		"views": [{"id":"v","view":{"name":"v","workflow":"demo","composites":[
			{"id":"ab","members":["a","b"]},{"id":"cc","members":["c"]}]}}]
	}`)
	if status != http.StatusOK {
		t.Fatalf("register: %d %s", status, body)
	}
	status, body = httpDo(t, http.MethodPost, base+"/v1/workflows/demo/mutate",
		`{"edges": [["b","c"]], "tasks": [{"id":"d"}]}`)
	if status != http.StatusOK || !strings.Contains(body, `"version":2`) {
		t.Fatalf("mutate: %d %s", status, body)
	}
	if status, body = httpDo(t, http.MethodGet, base+"/readyz", ""); status != http.StatusOK {
		t.Fatalf("readyz while healthy: %d %s", status, body)
	}

	// Every snapshot publish now fails: the final checkpoint cannot land.
	ffs.Deny(vfs.OpRename, vfs.Fault{})
	if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err == nil || !strings.Contains(err.Error(), "final checkpoint") {
			t.Fatalf("shutdown with failing checkpoint returned %v; want final-checkpoint error", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("daemon did not exit after checkpoint failure")
	}
	ffs.Allow(vfs.OpRename)
	if ffs.Injected() == 0 {
		t.Fatal("checkpoint never hit the injected rename fault")
	}

	// Clean filesystem, same directory: recovery replays the WAL.
	openStore = storage.Open
	base2, done2 := bootDaemon(t, "-data-dir", dir, "-fsync", "none")
	defer stopDaemon(t, done2)
	status, body = httpDo(t, http.MethodGet, base2+"/v1/workflows/demo", "")
	if status != http.StatusOK || !strings.Contains(body, `"version":2`) {
		t.Fatalf("get after reboot: %d %s", status, body)
	}
	status, body = httpDo(t, http.MethodPost, base2+"/v1/workflows/demo/mutate", `{"edges": [["a","d"]]}`)
	if status != http.StatusOK || !strings.Contains(body, `"version":3`) {
		t.Fatalf("mutate after reboot: %d %s", status, body)
	}
}

// TestDurableRestartPreservesRuns: ingest an execution trace, SIGTERM
// the daemon, restart on the same -data-dir — the run and its audited
// lineage answer must survive recovery byte-identically.
func TestDurableRestartPreservesRuns(t *testing.T) {
	dir := t.TempDir()

	base, done := bootDaemon(t, "-data-dir", dir, "-fsync", "none")
	status, body := httpDo(t, http.MethodPut, base+"/v1/workflows/demo", `{
		"workflow": {"name":"demo","tasks":[{"id":"a"},{"id":"b"},{"id":"c"}],
			"edges":[["a","b"],["b","c"]]},
		"views": [{"id":"v","view":{"name":"v","workflow":"demo","composites":[
			{"id":"ab","members":["a","b"]},{"id":"cc","members":["c"]}]}}]
	}`)
	if status != http.StatusOK {
		t.Fatalf("register: %d %s", status, body)
	}
	status, body = httpDo(t, http.MethodPost, base+"/v1/workflows/demo/runs", `{
		"run":"r1",
		"artifacts":[{"id":"oa","generated_by":"a"},{"id":"ob","generated_by":"b"},{"id":"oc","generated_by":"c"}],
		"used":[{"process":"b","artifact":"oa"},{"process":"c","artifact":"ob"}]
	}`)
	if status != http.StatusOK {
		t.Fatalf("ingest: %d %s", status, body)
	}
	lineageURL := base + "/v1/workflows/demo/runs/r1/lineage?artifact=oc&level=audited&view=v&witness=1"
	status, wantLineage := httpDo(t, http.MethodGet, lineageURL, "")
	if status != http.StatusOK || !strings.Contains(wantLineage, `"tasks":["a","b"]`) {
		t.Fatalf("lineage before restart: %d %s", status, wantLineage)
	}
	_, wantList := httpDo(t, http.MethodGet, base+"/v1/workflows/demo/runs", "")
	stopDaemon(t, done)

	base2, done2 := bootDaemon(t, "-data-dir", dir, "-fsync", "none")
	defer stopDaemon(t, done2)
	status, gotList := httpDo(t, http.MethodGet, base2+"/v1/workflows/demo/runs", "")
	if status != http.StatusOK || gotList != strings.ReplaceAll(wantList, base, base2) {
		t.Fatalf("run list after restart diverges:\ngot:  %s\nwant: %s", gotList, wantList)
	}
	lineageURL2 := base2 + "/v1/workflows/demo/runs/r1/lineage?artifact=oc&level=audited&view=v&witness=1"
	status, gotLineage := httpDo(t, http.MethodGet, lineageURL2, "")
	if status != http.StatusOK || gotLineage != wantLineage {
		t.Fatalf("lineage after restart diverges:\ngot:  %s\nwant: %s", gotLineage, wantLineage)
	}
	// The recovered daemon keeps journaling runs.
	status, body = httpDo(t, http.MethodPost, base2+"/v1/workflows/demo/runs", `{
		"run":"r2","artifacts":[{"id":"x","generated_by":"a"}]}`)
	if status != http.StatusOK {
		t.Fatalf("ingest after restart: %d %s", status, body)
	}
	status, body = httpDo(t, http.MethodGet, base2+"/v1/stats", "")
	if status != http.StatusOK || !strings.Contains(body, `"runs":2`) {
		t.Fatalf("stats after restart: %d %s", status, body)
	}
}

// TestPprofPrivateListener boots the daemon with -pprof-addr on a
// second loopback port: the profile index must answer there, and must
// NOT be reachable through the public service address.
func TestPprofPrivateListener(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	pprofAddr := l.Addr().String()
	l.Close()

	base, done := bootDaemon(t, "-pprof-addr", pprofAddr)

	ok := false
	for i := 0; i < 100; i++ {
		resp, gerr := http.Get("http://" + pprofAddr + "/debug/pprof/")
		if gerr == nil {
			resp.Body.Close()
			ok = resp.StatusCode == http.StatusOK
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if !ok {
		t.Fatal("pprof index not served on the private listener")
	}
	if status, _ := httpDo(t, http.MethodGet, base+"/debug/pprof/", ""); status == http.StatusOK {
		t.Fatal("pprof must not be reachable on the public address")
	}
	stopDaemon(t, done)

	// A bad pprof address must fail startup fast.
	if err := run([]string{"-addr", "127.0.0.1:0", "-pprof-addr", "256.0.0.1:http"}); err == nil {
		t.Fatal("bad -pprof-addr must fail run()")
	}
}
