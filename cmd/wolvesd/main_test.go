package main

import (
	"net"
	"net/http"
	"syscall"
	"testing"
	"time"
)

// TestRunBadAddr: an unusable listen address must surface as an error,
// not a hang.
func TestRunBadAddr(t *testing.T) {
	done := make(chan error, 1)
	go func() { done <- run([]string{"-addr", "256.0.0.1:http"}) }()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("expected listen error")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("run did not return on a bad address")
	}
}

// TestRunServesAndShutsDown boots the daemon on a free port, hits
// /healthz, then delivers SIGTERM and expects a clean drain.
func TestRunServesAndShutsDown(t *testing.T) {
	// Reserve a free port, then hand its address to the daemon.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()

	done := make(chan error, 1)
	go func() {
		done <- run([]string{"-addr", addr, "-cache", "4", "-optimal-timeout", "100ms"})
	}()

	healthy := false
	for i := 0; i < 100; i++ {
		resp, err := http.Get("http://" + addr + "/healthz")
		if err == nil {
			resp.Body.Close()
			healthy = resp.StatusCode == http.StatusOK
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if !healthy {
		t.Fatal("daemon never became healthy")
	}

	// SIGTERM is caught by signal.NotifyContext inside run, which drains
	// and returns nil; the test process itself is unaffected while the
	// handler is registered.
	if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("shutdown returned %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("daemon did not shut down on SIGTERM")
	}
}
