// Command wolvesd serves the WOLVES pipeline over HTTP: the production
// face of the system. One long-lived Engine owns a fingerprint-keyed
// LRU of soundness oracles, so the reachability closure of a workflow is
// built once and shared by every request — exactly the shape needed to
// serve heavy validate/correct traffic over a repository of workflows.
// A live workflow registry sits beside it: clients register a workflow
// once, then stream cheap mutation batches; the daemon maintains every
// attached view's soundness report incrementally (dirty-set
// revalidation over an incrementally updated closure) instead of
// re-deriving the world per request.
//
// With -data-dir the registry is durable: every committed registry
// transition is journaled to a checksummed write-ahead log with periodic
// per-workflow snapshots, the registry is recovered from it at boot, and
// a final checkpoint is written on graceful shutdown — a restarted
// daemon serves the same workflows, versions and reports it held before.
// Without -data-dir the registry is in-memory, exactly as before.
//
// If the disk misbehaves at runtime the daemon degrades instead of
// lying: reads keep serving the in-memory state, mutations and ingests
// are shed with 503 + Retry-After, /readyz reports degraded, and a
// background probe rotates the journal onto a fresh segment and resyncs
// before flipping ready again. A failed final checkpoint is logged and
// the daemon exits non-zero — the WAL already holds every acknowledged
// transition, so the next boot replays it.
//
// Usage:
//
//	wolvesd [-addr :8342] [-workers N] [-cache N] [-live-workflows N]
//	        [-optimal-timeout 2s] [-read-timeout 30s] [-request-timeout 30s]
//	        [-ingest-concurrency N] [-data-dir DIR] [-fsync none|batch|always]
//	        [-snapshot-bytes N] [-snapshot-every N] [-probe-backoff 250ms]
//	        [-pprof-addr 127.0.0.1:6060] [-trace-sample N] [-slow-query 250ms]
//	        [-log-level info]
//
// -pprof-addr serves net/http/pprof on a separate private listener,
// never on the service address; keep it bound to loopback (a
// non-loopback bind works but is logged loudly, since profiles expose
// process internals).
//
// Observability: GET /metrics serves Prometheus text-format counters,
// gauges and histograms for the full serve/write/recovery path.
// -trace-sample N records one in N requests as an in-process trace,
// tailed at GET /debug/traces (0, the default, disables tracing and
// keeps the warm serve path allocation-free). -slow-query D logs any
// request slower than D and counts it in wolves_slow_queries_total.
// All daemon logs are structured key=value lines; -log-level sets the
// minimum severity (debug, info, warn, error).
//
// Stateless endpoints:
//
//	POST /v1/validate  {"workflow": …, "view": …}
//	POST /v1/correct   {"workflow": …, "view": …, "criterion": "strong"}
//	POST /v1/batch     {"jobs": [{"op": "validate", …}, …]}
//	GET  /healthz      liveness: 200 while the process serves
//	GET  /readyz       readiness: 503 while degraded or draining
//
// Live workflow resources:
//
//	PUT    /v1/workflows/{id}                      register workflow + views
//	GET    /v1/workflows/{id}                      metadata + document
//	DELETE /v1/workflows/{id}
//	POST   /v1/workflows/{id}/mutate               apply a task/edge batch
//	PUT    /v1/workflows/{id}/views/{vid}          attach/replace a view
//	DELETE /v1/workflows/{id}/views/{vid}
//	POST   /v1/workflows/{id}/views/{vid}/validate maintained report (lookup)
//	POST   /v1/workflows/{id}/views/{vid}/correct  propose a sound split
//	POST   /v1/workflows/{id}/views/{vid}/lineage  view vs exact provenance
//	GET    /v1/workflows                           enumerate registered workflows
//
// Provenance runs (the run store: real execution traces + lineage):
//
//	POST /v1/workflows/{id}/runs                   ingest a trace (JSON or NDJSON)
//	GET  /v1/workflows/{id}/runs                   list ingested runs
//	GET  /v1/workflows/{id}/runs/{rid}             run metadata
//	GET  /v1/workflows/{id}/runs/{rid}/lineage     ?artifact=…&level=exact|view|audited
//	POST /v1/workflows/{id}/runs/query             batch lineage queries
//	GET  /v1/stats                                 cache/registry/run-store counters
//
// Runs are journaled and snapshot-covered with the registry, so a
// restarted daemon serves the same runs and lineage answers.
//
// The daemon shuts down gracefully on SIGINT/SIGTERM, draining in-flight
// requests for up to 10 seconds.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"wolves/internal/engine"
	"wolves/internal/obs"
	"wolves/internal/runs"
	"wolves/internal/server"
	"wolves/internal/storage"
)

// mainLog narrates daemon lifecycle: boot, recovery, shutdown. Request
// traffic never goes through it.
var mainLog = obs.NewLogger("wolvesd")

// openStore is swapped by tests to wrap the store's filesystem with
// fault injection.
var openStore = storage.Open

// startPprof serves net/http/pprof on its own private listener, kept
// off the public mux so profiling is never reachable through the
// service address. The flag is opt-in; a non-loopback bind is allowed
// (containers, lab networks) but loudly logged, since the profile
// endpoints expose heap contents and symbol tables.
func startPprof(addr string) (func(), error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	if host, _, herr := net.SplitHostPort(addr); herr == nil {
		if ip := net.ParseIP(host); host != "localhost" && (ip == nil || !ip.IsLoopback()) {
			mainLog.Warn("pprof listener is not loopback; profiling endpoints expose process internals", "addr", addr)
		}
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	srv := &http.Server{Handler: mux, ReadHeaderTimeout: 10 * time.Second}
	go func() {
		mainLog.Info("pprof listening", "addr", ln.Addr().String())
		if serr := srv.Serve(ln); serr != nil && !errors.Is(serr, http.ErrServerClosed) {
			mainLog.Error("pprof server failed", "err", serr)
		}
	}()
	return func() { _ = srv.Close() }, nil
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "wolvesd:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("wolvesd", flag.ExitOnError)
	addr := fs.String("addr", ":8342", "listen address")
	workers := fs.Int("workers", 0, "fan-out width (0 = GOMAXPROCS)")
	cacheSize := fs.Int("cache", engine.DefaultCacheSize, "oracle-cache capacity (0 disables)")
	liveWorkflows := fs.Int("live-workflows", engine.DefaultRegistryCapacity,
		"live workflow registry capacity (LRU-evicted beyond it)")
	optimalTimeout := fs.Duration("optimal-timeout", 2*time.Second,
		"per-request bound on the exponential optimal corrector (0 = unbounded)")
	readTimeout := fs.Duration("read-timeout", 30*time.Second, "HTTP read timeout")
	requestTimeout := fs.Duration("request-timeout", server.DefaultRequestTimeout,
		"per-request handler deadline (0 = unbounded)")
	ingestConcurrency := fs.Int("ingest-concurrency", 0,
		"max concurrent run ingests before shedding with 503 (0 = max(2, workers))")
	dataDir := fs.String("data-dir", "",
		"durable registry directory: WAL + snapshots, recovered at boot (empty = in-memory)")
	fsyncFlag := fs.String("fsync", "batch",
		"WAL durability: none (write, never fsync), batch (group-commit), always (fsync per record)")
	snapshotBytes := fs.Int64("snapshot-bytes", 0,
		"snapshot trigger floor in journaled bytes per workflow (0 = default)")
	snapshotEvery := fs.Int("snapshot-every", 0,
		"additionally snapshot a workflow after this many journaled records (0 = size-based only)")
	probeBackoff := fs.Duration("probe-backoff", engine.DefaultProbeBackoffMin,
		"initial backoff between journal recovery probes while degraded")
	recoveryWorkers := fs.Int("recovery-workers", 0,
		"parallelism of boot recovery: snapshot loading and WAL replay (0 = GOMAXPROCS, 1 = sequential)")
	pprofAddr := fs.String("pprof-addr", "",
		"serve net/http/pprof on this private listener (e.g. 127.0.0.1:6060; empty = disabled; never expose publicly)")
	traceSample := fs.Int64("trace-sample", 0,
		"record one in N requests as an in-process trace, tailed at GET /debug/traces (0 = tracing off)")
	slowQuery := fs.Duration("slow-query", 0,
		"log requests slower than this and count them in wolves_slow_queries_total (0 = off)")
	logLevel := fs.String("log-level", "info", "minimum log level: debug, info, warn, error")
	if err := fs.Parse(args); err != nil {
		return err
	}

	level, err := obs.ParseLevel(*logLevel)
	if err != nil {
		return err
	}
	obs.SetLogLevel(level)
	obs.DefaultTracer.SetSampleN(*traceSample)
	obs.SetSlowQueryThreshold(*slowQuery)

	if *pprofAddr != "" {
		closePprof, err := startPprof(*pprofAddr)
		if err != nil {
			return fmt.Errorf("pprof listener: %w", err)
		}
		defer closePprof()
	}

	eng := engine.New(
		engine.WithWorkers(*workers),
		engine.WithOracleCache(*cacheSize),
		engine.WithOptimalTimeout(*optimalTimeout),
	)
	reg := engine.NewRegistry(eng,
		engine.WithRegistryCapacity(*liveWorkflows),
		engine.WithProbeBackoff(*probeBackoff, engine.DefaultProbeBackoffMax))
	runStore := runs.New(reg, runs.WithWorkers(eng.Workers()))

	var store *storage.Store
	var recoveryInfo *server.RecoveryInfo
	if *dataDir != "" {
		mode, err := storage.ParseFsyncMode(*fsyncFlag)
		if err != nil {
			return err
		}
		store, err = openStore(*dataDir, storage.Options{
			Fsync:           mode,
			SnapshotBytes:   *snapshotBytes,
			SnapshotEvery:   *snapshotEvery,
			RecoveryWorkers: *recoveryWorkers,
		})
		if err != nil {
			return fmt.Errorf("open data dir: %w", err)
		}
		// The snapshot path embeds run documents, so the provider must be
		// installed before anything can trigger a snapshot.
		store.SetRunProvider(runStore)
		stats, err := store.RecoverWithRuns(reg, runStore)
		if err != nil {
			return fmt.Errorf("recover %s: %w", *dataDir, err)
		}
		reg.SetJournal(store)
		runStore.SetJournal(store)
		// One stable summary line (the "component=wolvesd msg=recovery"
		// pair is what restart smoke tests grep for), mirrored into
		// /v1/stats below.
		mainLog.Info("recovery",
			"segments", stats.Segments,
			"snapshots", stats.Snapshots,
			"snapshots_dropped", stats.SnapshotsDropped,
			"replayed", stats.Replayed,
			"skipped", stats.Skipped,
			"workflows", stats.Workflows,
			"views", stats.Views,
			"runs", stats.Runs,
			"torn_bytes", stats.TornBytes,
			"workers", stats.Workers,
			"wall_millis", stats.WallMillis,
			"dir", *dataDir,
			"fsync", mode)
		recoveryInfo = &server.RecoveryInfo{
			Workflows:        stats.Workflows,
			Views:            stats.Views,
			Snapshots:        stats.Snapshots,
			SnapshotsDropped: stats.SnapshotsDropped,
			Segments:         stats.Segments,
			RecordsReplayed:  stats.Replayed,
			RecordsSkipped:   stats.Skipped,
			Runs:             stats.Runs,
			TornBytes:        stats.TornBytes,
			Workers:          stats.Workers,
			WallMillis:       stats.WallMillis,
		}
	}

	websrv := server.New(eng,
		server.WithRegistry(reg),
		server.WithRunStore(runStore),
		server.WithRequestTimeout(*requestTimeout),
		server.WithIngestConcurrency(*ingestConcurrency),
		server.WithRecoveryInfo(recoveryInfo),
	)
	srv := &http.Server{
		Addr:              *addr,
		Handler:           websrv.Handler(),
		ReadTimeout:       *readTimeout,
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		mainLog.Info("listening",
			"addr", *addr,
			"workers", eng.Workers(),
			"cache", *cacheSize,
			"live_workflows", *liveWorkflows,
			"optimal_timeout", *optimalTimeout,
			"trace_sample", *traceSample,
			"slow_query", *slowQuery)
		errc <- srv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		if store != nil {
			store.Close()
		}
		return err
	case <-ctx.Done():
		mainLog.Info("shutting down")
		websrv.StartDraining() // /readyz flips to 503 before the listener closes
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil {
			return fmt.Errorf("shutdown: %w", err)
		}
		if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
			return err
		}
		if store != nil {
			// Requests are drained: fold every live workflow into a final
			// snapshot so the next boot replays nothing. If the checkpoint
			// fails, the WAL on disk is still authoritative — every
			// acknowledged transition is journaled — so the next boot
			// replays instead. Close regardless (it releases the directory
			// lock without fsyncing anything suspect) and exit non-zero so
			// supervisors notice the disk is misbehaving.
			cpErr := store.Checkpoint(reg)
			if cpErr != nil {
				mainLog.Error("final checkpoint failed; WAL remains authoritative", "err", cpErr)
			}
			if err := store.Close(); err != nil {
				return fmt.Errorf("close store: %w", err)
			}
			if cpErr != nil {
				return fmt.Errorf("final checkpoint: %w", cpErr)
			}
			mainLog.Info("checkpoint written")
		}
		return nil
	}
}
