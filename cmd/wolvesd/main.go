// Command wolvesd serves the WOLVES pipeline over HTTP: the production
// face of the system. One long-lived Engine owns a fingerprint-keyed
// LRU of soundness oracles, so the reachability closure of a workflow is
// built once and shared by every request — exactly the shape needed to
// serve heavy validate/correct traffic over a repository of workflows.
// A live workflow registry sits beside it: clients register a workflow
// once, then stream cheap mutation batches; the daemon maintains every
// attached view's soundness report incrementally (dirty-set
// revalidation over an incrementally updated closure) instead of
// re-deriving the world per request.
//
// Usage:
//
//	wolvesd [-addr :8342] [-workers N] [-cache N] [-live-workflows N]
//	        [-optimal-timeout 2s] [-read-timeout 30s]
//
// Stateless endpoints:
//
//	POST /v1/validate  {"workflow": …, "view": …}
//	POST /v1/correct   {"workflow": …, "view": …, "criterion": "strong"}
//	POST /v1/batch     {"jobs": [{"op": "validate", …}, …]}
//	GET  /healthz
//
// Live workflow resources:
//
//	PUT    /v1/workflows/{id}                      register workflow + views
//	GET    /v1/workflows/{id}                      metadata + document
//	DELETE /v1/workflows/{id}
//	POST   /v1/workflows/{id}/mutate               apply a task/edge batch
//	PUT    /v1/workflows/{id}/views/{vid}          attach/replace a view
//	DELETE /v1/workflows/{id}/views/{vid}
//	POST   /v1/workflows/{id}/views/{vid}/validate maintained report (lookup)
//	POST   /v1/workflows/{id}/views/{vid}/correct  propose a sound split
//	POST   /v1/workflows/{id}/views/{vid}/lineage  view vs exact provenance
//
// The daemon shuts down gracefully on SIGINT/SIGTERM, draining in-flight
// requests for up to 10 seconds.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"wolves/internal/engine"
	"wolves/internal/server"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "wolvesd:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("wolvesd", flag.ExitOnError)
	addr := fs.String("addr", ":8342", "listen address")
	workers := fs.Int("workers", 0, "fan-out width (0 = GOMAXPROCS)")
	cacheSize := fs.Int("cache", engine.DefaultCacheSize, "oracle-cache capacity (0 disables)")
	liveWorkflows := fs.Int("live-workflows", engine.DefaultRegistryCapacity,
		"live workflow registry capacity (LRU-evicted beyond it)")
	optimalTimeout := fs.Duration("optimal-timeout", 2*time.Second,
		"per-request bound on the exponential optimal corrector (0 = unbounded)")
	readTimeout := fs.Duration("read-timeout", 30*time.Second, "HTTP read timeout")
	if err := fs.Parse(args); err != nil {
		return err
	}

	eng := engine.New(
		engine.WithWorkers(*workers),
		engine.WithOracleCache(*cacheSize),
		engine.WithOptimalTimeout(*optimalTimeout),
	)
	reg := engine.NewRegistry(eng, engine.WithRegistryCapacity(*liveWorkflows))
	srv := &http.Server{
		Addr:              *addr,
		Handler:           server.New(eng, server.WithRegistry(reg)).Handler(),
		ReadTimeout:       *readTimeout,
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		log.Printf("wolvesd listening on %s (workers=%d cache=%d live-workflows=%d optimal-timeout=%v)",
			*addr, eng.Workers(), *cacheSize, *liveWorkflows, *optimalTimeout)
		errc <- srv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
		log.Print("wolvesd: shutting down")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil {
			return fmt.Errorf("shutdown: %w", err)
		}
		if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
			return err
		}
		return nil
	}
}
