// Command wolveslint runs the repo's invariant analyzer suite — the
// machine-checked version of the seams PRs 3–6 established by hand:
//
//	vfsseam   storage I/O must route through the vfs fault seam
//	errcode   engine.Code ↔ HTTP mapping stays exhaustive
//	ctxpass   ctx threads through the library, no fresh Backgrounds
//	lockflow  mutex Lock pairs with (deferred) Unlock on every path
//	poolret   sync.Pool Get pairs with Put in the same function
//
// Usage:
//
//	go run ./cmd/wolveslint ./...
//	go run ./cmd/wolveslint -only vfsseam,errcode ./internal/storage/...
//
// Suppress a single finding with `//lint:allow <analyzer> <reason>` on
// or directly above the flagged line. Exit status is 1 when any
// diagnostic survives, 2 on loading errors — so CI can gate on it.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"wolves/internal/analysis"
	"wolves/internal/analysis/lint"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	flags := flag.NewFlagSet("wolveslint", flag.ExitOnError)
	only := flags.String("only", "", "comma-separated analyzer subset (default: all)")
	list := flags.Bool("list", false, "list analyzers and exit")
	flags.Parse(args)

	analyzers := analysis.All()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-10s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	if *only != "" {
		analyzers = analysis.ByName(strings.Split(*only, ","))
		if analyzers == nil {
			fmt.Fprintf(os.Stderr, "wolveslint: unknown analyzer in -only=%s\n", *only)
			return 2
		}
	}

	patterns := flags.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := lint.Load(".", patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "wolveslint: %v\n", err)
		return 2
	}
	broken := false
	for _, p := range pkgs {
		for _, e := range p.Errors {
			broken = true
			fmt.Fprintf(os.Stderr, "wolveslint: %s: %v\n", p.PkgPath, e)
		}
	}
	if broken {
		return 2
	}

	findings, err := lint.Run(pkgs, analyzers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "wolveslint: %v\n", err)
		return 2
	}
	for _, f := range findings {
		fmt.Println(f)
	}
	if len(findings) > 0 {
		return 1
	}
	return 0
}
