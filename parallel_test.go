package wolves_test

import (
	"encoding/json"
	"reflect"
	"runtime"
	"testing"

	"wolves"
)

func reportsIdentical(t *testing.T, name string, seq, par *wolves.Report) {
	t.Helper()
	if !reflect.DeepEqual(seq, par) {
		t.Fatalf("%s: parallel validation diverges from sequential", name)
	}
	sb, err := json.Marshal(seq)
	if err != nil {
		t.Fatal(err)
	}
	pb, err := json.Marshal(par)
	if err != nil {
		t.Fatal(err)
	}
	if string(sb) != string(pb) {
		t.Fatalf("%s: reports not byte-identical\nseq: %s\npar: %s", name, sb, pb)
	}
}

// TestValidateParallelRepositoryCatalog pins ValidateParallel to
// Validate across every view of the full repository catalog.
func TestValidateParallelRepositoryCatalog(t *testing.T) {
	old := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(old)
	for _, e := range wolves.Repository() {
		o := wolves.NewOracle(e.Workflow)
		for _, vs := range e.Views {
			seq := wolves.Validate(o, vs.View)
			if seq.Sound != vs.WantSound {
				t.Fatalf("%s/%s: catalog expectation drifted", e.Workflow.Name(), vs.View.Name())
			}
			for _, workers := range []int{0, 2, 5} {
				reportsIdentical(t, e.Workflow.Name()+"/"+vs.View.Name(),
					seq, wolves.ValidateParallel(o, vs.View, workers))
			}
		}
	}
}

// TestValidateParallelRandomizedLayered pins the equivalence on
// randomized GenLayered workflows across view shapes and sizes.
func TestValidateParallelRandomizedLayered(t *testing.T) {
	old := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(old)
	for seed := int64(0); seed < 6; seed++ {
		wf := wolves.GenLayered(wolves.LayeredConfig{
			Name: "rand", Tasks: 80 + 16*int(seed), Layers: 8,
			EdgeProb: 0.3, SkipProb: 0.05, Seed: seed,
		})
		o := wolves.NewOracle(wf)
		views := []*wolves.View{
			wolves.GenIntervalView(wf, 10, "bands"),
			wolves.GenRandomView(wf, 9, seed, "rand"),
			wolves.AtomicView(wf),
		}
		for _, v := range views {
			seq := wolves.Validate(o, v)
			for _, workers := range []int{0, 3, 16} {
				reportsIdentical(t, v.Name(), seq, wolves.ValidateParallel(o, v, workers))
			}
		}
	}
}
