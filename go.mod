module wolves

go 1.24
